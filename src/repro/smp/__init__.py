"""Shared-memory machine model, cost models and executable thread strategies.

Two execution tiers live here: the *simulated* strategies + calibrated
cost models (``cost``/``machine``/``strategies``), and the *measured*
process-parallel backend (``shm``/``backend``/``parallel``/``bench``) that
really runs the edge kernels across worker processes over shared memory.
"""

from ..sparse.dispatch import get_sparse_backend, use_sparse_backend
from .backend import get_edge_backend, use_edge_backend
from .cost import (
    FLUX_WORK_PER_EDGE,
    GRAD_WORK_PER_EDGE,
    JACOBIAN_WORK_PER_EDGE,
    EdgeKernelWork,
    EdgeLoopOptions,
    TriSolveOptions,
    edge_loop_time,
    flux_kernel_work,
    grad_kernel_work,
    ilu_time,
    jacobian_kernel_work,
    trsv_time,
    vector_op_time,
    vertex_loop_time,
)
from .machine import STAMPEDE_E5_2680, XEON_E5_2690_V2, XEON_PHI_KNC, MachineModel
from .parallel import STRATEGIES, ProcessEdgeBackend
from .shm import SharedArrayPool
from .sparse_parallel import SPARSE_STRATEGIES, SparseProcessBackend
from .strategies import (
    EdgeLoopExecutor,
    make_edge_loop_options,
    metis_thread_labels,
    natural_thread_labels,
    tri_solve_options_from_plan,
)

__all__ = [
    "FLUX_WORK_PER_EDGE",
    "GRAD_WORK_PER_EDGE",
    "JACOBIAN_WORK_PER_EDGE",
    "EdgeKernelWork",
    "EdgeLoopOptions",
    "TriSolveOptions",
    "edge_loop_time",
    "flux_kernel_work",
    "grad_kernel_work",
    "ilu_time",
    "jacobian_kernel_work",
    "trsv_time",
    "vector_op_time",
    "vertex_loop_time",
    "STAMPEDE_E5_2680",
    "XEON_E5_2690_V2",
    "XEON_PHI_KNC",
    "MachineModel",
    "EdgeLoopExecutor",
    "make_edge_loop_options",
    "metis_thread_labels",
    "natural_thread_labels",
    "tri_solve_options_from_plan",
    "ProcessEdgeBackend",
    "STRATEGIES",
    "SharedArrayPool",
    "SparseProcessBackend",
    "SPARSE_STRATEGIES",
    "get_edge_backend",
    "use_edge_backend",
    "get_sparse_backend",
    "use_sparse_backend",
]
