"""Process-parallel shared-memory execution of the edge kernels.

Everything else in :mod:`repro.smp` *prices* the paper's threading
strategies with cost models; this module *runs* them.  A
:class:`ProcessEdgeBackend` forks N worker processes that execute the
interior flux-residual edge loop (and the LSQ gradient edge loop) over
``multiprocessing.shared_memory`` arrays, one worker per simulated thread,
implementing the paper's three edge-threading strategies (Section V.A):

``locked``
    Natural-order edge split; every worker scatters into the one shared
    residual array under a lock, acquired per small block of edges.  This
    is the Python stand-in for "basic partitioning with atomics": the
    compute phase parallelizes, the write-out phase serializes and pays a
    synchronization toll per conflict granule.
``replicate``
    Natural-order edge split with one private accumulator array per
    worker; the parent reduces the ``(workers, nv, 4)`` slab at the end.
    Zero redundant compute, but the write-out traffic (and the reduction)
    scales with worker count — the classic replication trade.
``owner``
    Vertex partition (``metis`` multilevel labels or ``natural``
    contiguous chunks); a worker processes every edge touching one of its
    vertices but writes only the endpoints it owns, so workers write
    disjoint rows of the shared residual with no synchronization at all.
    Cut edges are computed twice (``redundant_edge_fraction``) — the
    paper's winning owner-only-writes scheme.

Numerics contract: all three reproduce the sequential kernels to round-off
(summation order may differ), property-tested in
``tests/test_smp_parallel.py``.

Implementation notes.  Workers are created with the ``fork`` start method:
read-only structural data (edge endpoints, normals, partition index lists)
is inherited copy-on-write, while everything mutated across calls — the
state ``q``, gradients, limiter, residual/accumulator outputs — lives in a
:class:`~repro.smp.shm.SharedArrayPool` so writes are visible both ways.
Worker wall-clock intervals come back with every task and are attached to the
active :mod:`repro.obs` tracer as ``flux.w<i>`` / ``grad.w<i>`` spans
(``fork`` keeps ``perf_counter`` clocks comparable across the processes).
"""

from __future__ import annotations

import atexit
import multiprocessing as mp
import multiprocessing.connection as mp_conn
import os
import time
from dataclasses import dataclass, field as dc_field
from typing import Any

import numpy as np

from ..obs.live.recorder import crash_dump, reap_dead
from ..obs.live.ring import STATE_BUSY, STATE_IDLE
from ..obs.metrics import get_metrics
from ..obs.span import get_tracer
from .shm import SharedArrayPool
from .strategies import metis_thread_labels, natural_thread_labels

__all__ = ["ProcessEdgeBackend", "STRATEGIES", "EDGE_WORKER_SLOTS"]

STRATEGIES = ("locked", "replicate", "owner")

#: Telemetry slots every edge worker publishes (see repro.obs.live).
EDGE_WORKER_SLOTS = ("tasks", "flux_calls", "grad_calls", "busy_seconds")


@dataclass
class _WorkerSpec:
    """Per-worker view of the shared problem (inherited through fork).

    Edge-indexed inputs are *pre-gathered* into contiguous per-worker
    copies at construction time (the backend is built once per field, then
    called every residual evaluation), so the hot loop streams its chunk
    without an extra index indirection — the paper's "edge data in streamed
    SoA order" layout point applied to the worker chunks.
    """

    wid: int
    strategy: str
    lock_block: int
    w0: np.ndarray | None  # owner strategy: write mask for endpoint 0
    w1: np.ndarray | None
    e0: np.ndarray  # this worker's edge endpoints (contiguous copies)
    e1: np.ndarray
    normals: np.ndarray
    d0: np.ndarray  # midpoint - x[e0]
    d1: np.ndarray
    dx: np.ndarray  # x[e1] - x[e0]
    q: np.ndarray
    grad: np.ndarray
    limiter: np.ndarray
    res: np.ndarray
    rhs: np.ndarray
    qmin: np.ndarray | None = dc_field(default=None)  # fused pipeline
    qmax: np.ndarray | None = dc_field(default=None)
    eps2: np.ndarray | None = dc_field(default=None)
    mm_plan: Any = None  # SegmentReducePlan over this worker's write set
    acc: np.ndarray | None = dc_field(default=None)  # this worker's slab
    acc_rhs: np.ndarray | None = dc_field(default=None)
    acc_min: np.ndarray | None = dc_field(default=None)
    acc_max: np.ndarray | None = dc_field(default=None)
    telem: Any = None  # TelemetryWriter | None


def _run_flux(spec: _WorkerSpec, lock, beta, scheme, use_grad, use_limiter):
    from ..cfd.flux import numerical_edge_flux

    e0, e1, q = spec.e0, spec.e1, spec.q
    ql = q[e0]
    qr = q[e1]
    if use_grad:
        dq0 = np.einsum("nvi,ni->nv", spec.grad[e0], spec.d0)
        dq1 = np.einsum("nvi,ni->nv", spec.grad[e1], spec.d1)
        if use_limiter:
            dq0 = dq0 * spec.limiter[e0]
            dq1 = dq1 * spec.limiter[e1]
        ql = ql + dq0
        qr = qr + dq1
    flux = numerical_edge_flux(ql, qr, spec.normals, beta, scheme)
    if spec.strategy == "owner":
        np.add.at(spec.res, e0[spec.w0], flux[spec.w0])
        np.subtract.at(spec.res, e1[spec.w1], flux[spec.w1])
    elif spec.strategy == "replicate":
        spec.acc.fill(0.0)
        np.add.at(spec.acc, e0, flux)
        np.subtract.at(spec.acc, e1, flux)
    else:  # locked scatter, one lock round-trip per conflict granule
        blk = spec.lock_block
        for s in range(0, e0.shape[0], blk):
            e = s + blk
            with lock:
                np.add.at(spec.res, e0[s:e], flux[s:e])
                np.subtract.at(spec.res, e1[s:e], flux[s:e])


def _run_grad(spec: _WorkerSpec, lock):
    e0, e1 = spec.e0, spec.e1
    dq = spec.q[e1] - spec.q[e0]
    contrib = dq[:, :, None] * spec.dx[:, None, :]
    if spec.strategy == "owner":
        np.add.at(spec.rhs, e0[spec.w0], contrib[spec.w0])
        np.add.at(spec.rhs, e1[spec.w1], contrib[spec.w1])
    elif spec.strategy == "replicate":
        spec.acc_rhs.fill(0.0)
        np.add.at(spec.acc_rhs, e0, contrib)
        np.add.at(spec.acc_rhs, e1, contrib)
    else:
        blk = spec.lock_block
        for s in range(0, e0.shape[0], blk):
            e = s + blk
            with lock:
                np.add.at(spec.rhs, e0[s:e], contrib[s:e])
                np.add.at(spec.rhs, e1[s:e], contrib[s:e])


def _scatter_minmax(spec: _WorkerSpec, lock, vals, shared, acc_slab, op):
    """Fold per-edge ``vals`` into the vertex array ``shared`` with the
    strategy's write-out discipline.  min/max are IEEE-exact in any order,
    so every strategy reproduces the serial ``ufunc.at`` result bitwise."""
    ident = np.inf if op == "min" else -np.inf
    ufunc = np.minimum if op == "min" else np.maximum
    if spec.strategy == "owner":
        spec.mm_plan.apply(vals, shared, op)  # disjoint owned rows
    elif spec.strategy == "replicate":
        acc_slab.fill(ident)
        spec.mm_plan.apply(vals, acc_slab, op)  # parent reduces slabs
    else:  # locked: local fold, one lock round-trip to merge
        tmp = np.full(shared.shape, ident)
        spec.mm_plan.apply(vals, tmp, op)
        with lock:
            ufunc(shared, tmp, out=shared)


def _run_recon(spec: _WorkerSpec, lock):
    """Fused reconstruction sweep: the gradient-rhs accumulation plus the
    neighbor min/max fold in one pass over this worker's edges (one shared
    gather of ``q`` instead of two)."""
    _run_grad(spec, lock)
    qe0 = spec.q[spec.e0]
    qe1 = spec.q[spec.e1]
    if spec.strategy == "owner":
        # the owner of each endpoint contributes its neighbor's value
        vals = np.concatenate([qe1[spec.w0], qe0[spec.w1]], axis=0)
    else:
        vals = np.concatenate([qe1, qe0], axis=0)
    _scatter_minmax(spec, lock, vals, spec.qmin, spec.acc_min, "min")
    _scatter_minmax(spec, lock, vals, spec.qmax, spec.acc_max, "max")


def _run_limit(spec: _WorkerSpec, lock):
    """Fused limiter sweep: Venkat limiter values per edge end (same
    arithmetic as :func:`repro.cfd.gradient.venkat_limiter`), folded into
    the shared ``limiter`` array by scatter-min."""
    vals = []
    for e, disp in ((spec.e0, spec.d0), (spec.e1, spec.d1)):
        d2 = np.einsum("nvi,ni->nv", spec.grad[e], disp)
        dmax = spec.qmax[e] - spec.q[e]
        dmin = spec.qmin[e] - spec.q[e]
        d1 = np.where(d2 > 0.0, dmax, dmin)
        e2 = spec.eps2[e][:, None]
        num = (d1 * d1 + e2) * d2 + 2.0 * d2 * d2 * d1
        den = d2 * (d1 * d1 + 2.0 * d2 * d2 + d1 * d2 + e2)
        with np.errstate(divide="ignore", invalid="ignore"):
            val = np.where(np.abs(d2) > 1e-14, num / den, 1.0)
        vals.append(np.clip(val, 0.0, 1.0))
    if spec.strategy == "owner":
        v = np.concatenate([vals[0][spec.w0], vals[1][spec.w1]], axis=0)
    else:
        v = np.concatenate(vals, axis=0)
    _scatter_minmax(spec, lock, v, spec.limiter, spec.acc_min, "min")


def _worker_loop(wid: int, spec: _WorkerSpec, conn, lock) -> None:
    """Worker main: serve tasks off the duplex pipe until ``None`` arrives."""
    telem = spec.telem
    if telem is not None:
        telem.hello()
    while True:
        try:
            task = conn.recv()
        except EOFError:  # parent is gone
            break
        if task is None:
            break
        kind, seq = task[0], task[1]
        if telem is not None:
            telem.heartbeat(STATE_BUSY)
        t0 = time.perf_counter()
        err = None
        try:
            if kind == "flux":
                _, _, beta, scheme, use_grad, use_limiter = task
                _run_flux(spec, lock, beta, scheme, use_grad, use_limiter)
            elif kind == "grad":
                _run_grad(spec, lock)
            elif kind == "recon":
                _run_recon(spec, lock)
            elif kind == "limit":
                _run_limit(spec, lock)
            elif kind == "sleep":  # test/diagnostic hook
                time.sleep(task[2])
            else:
                raise ValueError(f"unknown task kind {kind!r}")
        except Exception as exc:  # surfaced to the parent, never swallowed
            err = f"{type(exc).__name__}: {exc}"
        t1 = time.perf_counter()
        conn.send((wid, seq, t0, t1, err))
        if telem is not None:
            calls = {"flux": "flux_calls", "grad": "grad_calls"}.get(kind)
            telem.add(
                tasks=1.0,
                busy_seconds=t1 - t0,
                **({calls: 1.0} if calls else {}),
            )
            if err is None:
                telem.push_event("task_done", a=float(seq), b=t1 - t0)
            else:
                telem.push_event("task_error", a=float(seq))
            telem.heartbeat(STATE_IDLE)


class ProcessEdgeBackend:
    """Multiprocess executor of the flux/gradient edge loops on one field.

    Parameters
    ----------
    field:
        the :class:`~repro.cfd.state.FlowField` whose edge loops to run.
    n_workers:
        worker process count (the paper's "threads").
    strategy:
        ``locked`` | ``replicate`` | ``owner`` (see module docstring).
    partitioner:
        vertex labeling for ``owner``: ``metis`` (multilevel) or
        ``natural`` (contiguous chunks).  Ignored otherwise.
    lock_block:
        edges per lock acquisition in the ``locked`` scatter — the
        conflict granule of the atomics stand-in.
    timeout:
        seconds to wait for a worker round before declaring it dead.
    telemetry:
        allocate a live telemetry plane (default on): workers publish
        heartbeat/state plus task and busy-time counters into shared
        slots (:mod:`repro.obs.live`), readable from the parent while
        the fleet runs.
    """

    def __init__(
        self,
        field,
        n_workers: int = 2,
        strategy: str = "owner",
        partitioner: str = "metis",
        seed: int = 0,
        lock_block: int = 64,
        timeout: float = 120.0,
        telemetry: bool = True,
    ) -> None:
        if strategy not in STRATEGIES:
            raise ValueError(
                f"unknown strategy {strategy!r}; pick one of {STRATEGIES}"
            )
        if partitioner not in ("metis", "natural"):
            raise ValueError(f"unknown partitioner {partitioner!r}")
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        if "fork" not in mp.get_all_start_methods():
            raise RuntimeError(
                "ProcessEdgeBackend needs the 'fork' start method "
                "(POSIX only); use the serial backend on this platform"
            )
        self._field = field
        self.n_workers = int(n_workers)
        self.strategy = strategy
        self.partitioner = partitioner if strategy == "owner" else None
        self.timeout = float(timeout)
        self._owner_pid = os.getpid()
        self._closed = False
        self._broken = False
        self._seq = 0
        self._flux_rounds = 0
        self._grad_rounds = 0
        self._fused_rounds = 0

        nv, ne = field.n_vertices, field.n_edges
        w = self.n_workers

        # --- shared (mutable across calls) state ----------------------
        self._pool = SharedArrayPool()
        q = self._pool.zeros("q", (nv, 4))
        grad = self._pool.zeros("grad", (nv, 4, 3))
        limiter = self._pool.zeros("limiter", (nv, 4))
        res = self._pool.zeros("res", (nv, 4))
        rhs = self._pool.zeros("rhs", (nv, 4, 3))
        qmin = self._pool.zeros("qmin", (nv, 4))
        qmax = self._pool.zeros("qmax", (nv, 4))
        eps2 = self._pool.zeros("eps2", (nv,))
        acc = acc_rhs = acc_min = acc_max = None
        if strategy == "replicate":
            acc = self._pool.zeros("acc", (w, nv, 4))
            acc_rhs = self._pool.zeros("acc_rhs", (w, nv, 4, 3))
            acc_min = self._pool.zeros("acc_min", (w, nv, 4))
            acc_max = self._pool.zeros("acc_max", (w, nv, 4))
        self._q, self._grad, self._limiter = q, grad, limiter
        self._res, self._rhs = res, rhs
        self._qmin, self._qmax, self._eps2 = qmin, qmax, eps2
        self._acc, self._acc_rhs = acc, acc_rhs
        self._acc_min, self._acc_max = acc_min, acc_max

        self._plane = None
        writers: list[Any] = [None] * w
        if telemetry:
            from ..obs.live import TelemetryPlane

            # plane arrays live in the backend pool: forked workers
            # inherit the views, the leak tests cover the segments
            self._plane = TelemetryPlane(
                {f"edge.w{s}": EDGE_WORKER_SLOTS for s in range(w)},
                pool=self._pool,
            )
            writers = [self._plane.writer(f"edge.w{s}") for s in range(w)]

        # --- edge partition (read-only, inherited by fork) ------------
        self.labels = None
        chunks: list[np.ndarray] = []
        masks: list[tuple[np.ndarray, np.ndarray] | None] = []
        if strategy == "owner":
            edges = np.column_stack((field.e0, field.e1))
            self.labels = (
                metis_thread_labels(edges, nv, w, seed=seed)
                if partitioner == "metis"
                else natural_thread_labels(nv, w)
            )
            l0 = self.labels[field.e0]
            l1 = self.labels[field.e1]
            for s in range(w):
                sel = np.where((l0 == s) | (l1 == s))[0]
                chunks.append(sel)
                masks.append((l0[sel] == s, l1[sel] == s))
        else:
            bounds = np.linspace(0, ne, w + 1).astype(np.int64)
            for s in range(w):
                chunks.append(np.arange(bounds[s], bounds[s + 1]))
                masks.append(None)
        self._chunks = chunks
        self.redundant_edge_fraction = (
            sum(c.shape[0] for c in chunks) - ne
        ) / ne

        # --- worker processes -----------------------------------------
        ctx = mp.get_context("fork")
        self._lock = ctx.Lock()
        self._conns = []
        self._workers = []
        from ..perf.scatter import segment_reduce_plan

        for s in range(w):
            m = masks[s]
            sel = chunks[s]
            ce0 = np.ascontiguousarray(field.e0[sel])
            ce1 = np.ascontiguousarray(field.e1[sel])
            # scatter-min/max write set of this worker's fused sweeps:
            # owner writes only owned endpoint rows, the others fold
            # every endpoint of their chunk (into a slab / under the lock)
            mm_targets = (
                np.concatenate([ce0[m[0]], ce1[m[1]]])
                if m
                else np.concatenate([ce0, ce1])
            )
            mm_plan = segment_reduce_plan(
                mm_targets, nv, name=f"kgir.minmax.w{s}"
            )
            spec = _WorkerSpec(
                wid=s,
                strategy=strategy,
                lock_block=int(lock_block),
                w0=m[0] if m else None,
                w1=m[1] if m else None,
                e0=ce0,
                e1=ce1,
                normals=np.ascontiguousarray(field.enormals[sel]),
                d0=np.ascontiguousarray(field.emid_d0[sel]),
                d1=np.ascontiguousarray(field.emid_d1[sel]),
                dx=np.ascontiguousarray(field.emid_d0[sel] * 2.0),
                q=q,
                grad=grad,
                limiter=limiter,
                res=res,
                rhs=rhs,
                qmin=qmin,
                qmax=qmax,
                eps2=eps2,
                mm_plan=mm_plan,
                acc=acc[s] if acc is not None else None,
                acc_rhs=acc_rhs[s] if acc_rhs is not None else None,
                acc_min=acc_min[s] if acc_min is not None else None,
                acc_max=acc_max[s] if acc_max is not None else None,
                telem=writers[s],
            )
            parent_conn, child_conn = ctx.Pipe(duplex=True)
            p = ctx.Process(
                target=_worker_loop,
                args=(s, spec, child_conn, self._lock),
                daemon=True,
                name=f"repro-edge-w{s}",
            )
            p.start()
            child_conn.close()  # parent keeps only its end
            self._conns.append(parent_conn)
            self._workers.append(p)
        atexit.register(self.close)

    # ------------------------------------------------------------------
    @property
    def field(self):
        return self._field

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def strategy_label(self) -> str:
        """``locked`` / ``replicate`` / ``owner-metis`` / ``owner-natural``."""
        if self.strategy == "owner":
            return f"owner-{self.partitioner}"
        return self.strategy

    def edges_per_worker(self) -> np.ndarray:
        return np.array([c.shape[0] for c in self._chunks], dtype=np.int64)

    def handles(self, field) -> bool:
        """True iff this backend can run edge loops for ``field`` now."""
        return field is self._field and not self._closed and not self._broken

    def segment_names(self) -> dict[str, str]:
        return self._pool.segment_names()

    def telemetry_plane(self):
        """This fleet's live plane (None when telemetry is disabled)."""
        return self._plane

    def fleet_stats(self) -> dict:
        """Reuse counters of this forked fleet, since fork.

        ``rounds`` counts dispatch rounds (every kind); a warm fleet held
        across solves keeps growing them, which is how the serve daemon's
        ``stats`` — and the CI serve-smoke job — verify the fleet was
        reused rather than reforked per request.
        """
        return {
            "workers": self.n_workers,
            "strategy": self.strategy_label,
            "rounds": self._seq,
            "flux_rounds": self._flux_rounds,
            "grad_rounds": self._grad_rounds,
            "fused_rounds": self._fused_rounds,
            "closed": self._closed,
        }

    # ------------------------------------------------------------------
    def _require_usable(self) -> None:
        """Refuse before touching the shared arrays: after ``close()`` the
        segments are unmapped and a write would fault, not raise."""
        if self._closed:
            raise RuntimeError("backend is closed")
        if self._broken:
            raise RuntimeError(
                "backend is unusable after a worker failure; create a new one"
            )

    def _dispatch_collect(
        self, task_tail: tuple, span_prefix: str | None = None
    ) -> list[tuple[int, float, float]]:
        """Send one task to every worker, wait for all results.

        Raises ``RuntimeError`` (and marks the backend broken) if a worker
        reports an exception, dies, or the round times out.
        """
        self._require_usable()
        self._seq += 1
        seq = self._seq
        task = (task_tail[0], seq) + tuple(task_tail[1:])
        for conn in self._conns:
            try:
                conn.send(task)
            except OSError:  # a dead worker's pipe rejects the send
                self._broken = True
                dead = reap_dead(self._workers)
                crash_dump("edge-worker-death (send failed)",
                           dead=tuple(dead))
                raise RuntimeError(
                    f"worker process(es) died mid-loop: {dead}"
                ) from None
        results: list[tuple[int, float, float]] = []
        pending = dict(enumerate(self._conns))
        deadline = time.monotonic() + self.timeout
        while pending:
            ready = mp_conn.wait(list(pending.values()), timeout=0.2)
            if not ready:
                dead = [
                    self._workers[i].name
                    for i in pending
                    if not self._workers[i].is_alive()
                ]
                if dead:
                    self._broken = True
                    crash_dump("edge-worker-death", dead=tuple(dead))
                    raise RuntimeError(
                        f"worker process(es) died mid-loop: {dead}"
                    )
                if time.monotonic() > deadline:
                    self._broken = True
                    crash_dump("edge-worker-timeout")
                    raise RuntimeError(
                        f"timed out after {self.timeout}s waiting for workers"
                    )
                continue
            for conn in ready:
                try:
                    wid, rseq, t0, t1, err = conn.recv()
                except EOFError:
                    self._broken = True
                    dead = reap_dead(self._workers)
                    crash_dump(
                        "edge-worker-death (pipe closed)", dead=tuple(dead)
                    )
                    raise RuntimeError(
                        "worker process died mid-loop (pipe closed)"
                    ) from None
                if rseq != seq:
                    continue  # stale result from an aborted round
                if err is not None:
                    self._broken = True
                    raise RuntimeError(f"worker {wid} failed: {err}")
                results.append((wid, t0, t1))
                del pending[wid]
        tracer = get_tracer()
        if span_prefix is not None and tracer.active:
            for wid, t0, t1 in results:
                tracer.add_complete(
                    f"{span_prefix}.w{wid}",
                    t0,
                    t1,
                    edges=int(self._chunks[wid].shape[0]),
                    strategy=self.strategy_label,
                )
        return results

    # ------------------------------------------------------------------
    def flux_residual(
        self,
        q: np.ndarray,
        beta: float,
        grad: np.ndarray | None = None,
        limiter: np.ndarray | None = None,
        scheme: str = "rusanov",
    ) -> np.ndarray:
        """Interior flux residual, parallel counterpart of
        :func:`repro.cfd.flux.interior_flux_residual`."""
        self._require_usable()
        self._q[...] = q
        if grad is not None:
            self._grad[...] = grad
        if limiter is not None:
            self._limiter[...] = limiter
        if self.strategy != "replicate":
            self._res.fill(0.0)
        self._dispatch_collect(
            ("flux", float(beta), scheme, grad is not None, limiter is not None),
            span_prefix="flux",
        )
        get_metrics().counter("parallel.flux_calls").inc()
        self._flux_rounds += 1
        if self.strategy == "replicate":
            return self._acc.sum(axis=0)
        return self._res.copy()

    def gradients(self, q: np.ndarray) -> np.ndarray:
        """LSQ gradients, parallel counterpart of
        :func:`repro.cfd.gradient.lsq_gradients` (edge loop in the workers,
        batched 3x3 solve in the parent)."""
        self._require_usable()
        self._q[...] = q
        if self.strategy != "replicate":
            self._rhs.fill(0.0)
        self._dispatch_collect(("grad",), span_prefix="grad")
        get_metrics().counter("parallel.grad_calls").inc()
        self._grad_rounds += 1
        rhs = (
            self._acc_rhs.sum(axis=0)
            if self.strategy == "replicate"
            else self._rhs
        )
        return np.einsum("nij,nvj->nvi", self._field.lsq_inv, rhs)

    def fused_pipeline(self, q: np.ndarray, config):
        """Fused interior pipeline on the worker fleet: two fused edge
        sweeps (``recon`` = gradient rhs + neighbor min/max, ``limit`` =
        Venkat values + scatter-min) and the flux sweep, with the 3x3 LSQ
        solve and slab reductions in the parent between dispatches.

        Returns ``(res, grad, phi)`` — bitwise identical to running
        :meth:`gradients`, the serial limiter and :meth:`flux_residual`
        separately (min/max folds are order-free exact; everything else
        replays the same statements in the same order).
        """
        self._require_usable()
        replicate = self.strategy == "replicate"
        self._q[...] = q
        if not replicate:
            self._rhs.fill(0.0)
        self._qmin[...] = q
        self._qmax[...] = q
        self._dispatch_collect(("recon",), span_prefix="kgir.recon")
        rhs = self._acc_rhs.sum(axis=0) if replicate else self._rhs
        if replicate:
            np.minimum(q, self._acc_min.min(axis=0), out=self._qmin)
            np.maximum(q, self._acc_max.max(axis=0), out=self._qmax)
        self._grad[...] = np.einsum(
            "nij,nvj->nvi", self._field.lsq_inv, rhs
        )
        self._eps2[...] = (config.limiter_k**3) * self._field.volumes
        self._limiter.fill(1.0)
        self._dispatch_collect(("limit",), span_prefix="kgir.limit")
        if replicate:
            np.minimum(
                self._limiter,
                self._acc_min.min(axis=0),
                out=self._limiter,
            )
        if not replicate:
            self._res.fill(0.0)
        self._dispatch_collect(
            ("flux", float(config.beta), config.dissipation, True, True),
            span_prefix="kgir.flux",
        )
        get_metrics().counter("parallel.fused_calls").inc()
        self._fused_rounds += 1
        res = self._acc.sum(axis=0) if replicate else self._res.copy()
        return res, self._grad.copy(), self._limiter.copy()

    def _debug_sleep(self, seconds: float) -> None:
        """Park every worker in a sleep task (test hook for mid-loop kills)."""
        self._dispatch_collect(("sleep", float(seconds)))

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Stop the workers and unlink every shared segment.  Idempotent."""
        if self._closed or os.getpid() != self._owner_pid:
            return
        self._closed = True
        for i, p in enumerate(self._workers):
            if p.is_alive():
                try:
                    self._conns[i].send(None)
                except Exception:
                    pass
        for p in self._workers:
            p.join(timeout=2.0)
            if p.is_alive():
                p.terminate()
                p.join(timeout=2.0)
            if p.is_alive():
                p.kill()
                p.join(timeout=1.0)
        for conn in self._conns:
            try:
                conn.close()
            except Exception:
                pass
        if self._plane is not None:
            self._plane.close()  # unregister before the pool unlinks
        self._pool.close()
        try:
            atexit.unregister(self.close)
        except Exception:
            pass

    def __enter__(self) -> "ProcessEdgeBackend":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    def __del__(self) -> None:
        try:
            self.close()
        except Exception:
            pass
