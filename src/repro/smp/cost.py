"""Kernel cost models: counted work in, modeled seconds out.

Each model combines a roofline (compute vs. DRAM bandwidth) with explicit
gather-stall, redundant-work, load-imbalance and synchronization terms.  All
*structural* inputs (edge counts per thread, replication overhead, level
widths, retained dependencies) are computed from the real mesh / matrix /
schedule objects — never assumed.  The microarchitectural constants live in
:class:`~repro.smp.machine.MachineModel` and are calibrated against the
paper's Figure 6a bar ratios (see the derivation below).

Calibration of the edge-loop constants (flux kernel, 350 flops/edge):
with scalar compute 175 cyc/edge and AVX compute 43.75 cyc/edge, requiring
the paper's cumulative ratios — AoS-over-SoA 1.4x, SIMD 1.4x, prefetch
1.15x — fixes ``stall_per_load ~ 3.8``, ``simd_gather_factor ~ 2.24`` and
``prefetch_stall_factor ~ 0.82``; the leftover baseline/threading gap
implies a mild ``unordered_latency_factor ~ 1.3`` (the 1999 meshes ship
partially ordered).  These are set as the model defaults.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .machine import MachineModel

__all__ = [
    "EdgeLoopOptions",
    "EdgeKernelWork",
    "edge_loop_time",
    "FLUX_WORK_PER_EDGE",
    "GRAD_WORK_PER_EDGE",
    "JACOBIAN_WORK_PER_EDGE",
    "flux_kernel_work",
    "grad_kernel_work",
    "jacobian_kernel_work",
    "TriSolveOptions",
    "trsv_time",
    "ilu_time",
    "vertex_loop_time",
    "vector_op_time",
]

_F8 = 8.0  # bytes per double


# ---------------------------------------------------------------------------
# Edge-based "stencil op" loops
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class EdgeKernelWork:
    """Work of one edge-based kernel sweep.

    ``gather_loads_soa/aos``: irregular loads per edge for each vertex-data
    layout.  With SoA each scalar field of each endpoint is a separate
    load; AoS packs a vertex's fields into consecutive cache lines loadable
    as vectors (the paper's "multiple Array of Structures" node data).
    """

    n_edges: int
    flops_per_edge: float
    gather_loads_soa: float
    gather_loads_aos: float
    stream_bytes_per_edge: float  # SoA edge data (normals, indices)
    dram_bytes_per_edge: float  # modeled DRAM traffic incl. reuse


#: Flux kernel: full characteristic flux, both endpoints' states, gradients
#: and geometry gathered (the paper reports 9.4 flops per accessed byte).
FLUX_WORK_PER_EDGE = dict(
    flops_per_edge=350.0,
    gather_loads_soa=38.0,  # 2 vertices x 19 scalar fields
    gather_loads_aos=14.0,  # 2 vertices x ~7 packed lines/loads
    stream_bytes_per_edge=40.0,  # normal (24B) + 2 indices (16B)
    dram_bytes_per_edge=60.0,  # edge data + cache-filtered vertex gathers
)

#: Gradient kernel: dx and dq per edge, 4x3 outer-product accumulation.
GRAD_WORK_PER_EDGE = dict(
    flops_per_edge=90.0,
    gather_loads_soa=14.0,
    gather_loads_aos=6.0,
    stream_bytes_per_edge=40.0,
    dram_bytes_per_edge=90.0,
)

#: Jacobian kernel: two 4x4 flux Jacobians plus 4 block scatters per edge.
JACOBIAN_WORK_PER_EDGE = dict(
    flops_per_edge=480.0,
    gather_loads_soa=22.0,
    gather_loads_aos=9.0,
    stream_bytes_per_edge=40.0,
    dram_bytes_per_edge=300.0,  # four 128B block writes dominate
)


def flux_kernel_work(n_edges: int) -> EdgeKernelWork:
    return EdgeKernelWork(n_edges=n_edges, **FLUX_WORK_PER_EDGE)


def grad_kernel_work(n_edges: int) -> EdgeKernelWork:
    return EdgeKernelWork(n_edges=n_edges, **GRAD_WORK_PER_EDGE)


def jacobian_kernel_work(n_edges: int) -> EdgeKernelWork:
    return EdgeKernelWork(n_edges=n_edges, **JACOBIAN_WORK_PER_EDGE)


@dataclass
class EdgeLoopOptions:
    """How an edge loop is executed (the paper's optimization space)."""

    n_threads: int = 1
    strategy: str = "sequential"  # sequential | atomic | replicate | coloring
    layout: str = "soa"  # soa | aos
    simd: bool = False
    prefetch: bool = False
    rcm: bool = False
    #: per-thread edge counts under owner-writes replication (cut edges
    #: counted twice); computed by repro.partition.edges_per_part
    edges_per_thread: np.ndarray | None = None
    #: atomic updates per edge (2 endpoints x 4 variables)
    atomics_per_edge: float = 8.0
    #: number of colors for the coloring strategy (one barrier per color)
    n_colors: int = 0


def _edge_cycles(
    machine: MachineModel, work: EdgeKernelWork, opts: EdgeLoopOptions
) -> float:
    """Modeled cycles per edge for one thread."""
    simd = opts.simd
    per_cycle = (
        machine.flops_per_cycle_simd if simd else machine.flops_per_cycle_scalar
    )
    compute = work.flops_per_edge / per_cycle
    loads = work.gather_loads_aos if opts.layout == "aos" else work.gather_loads_soa
    lat = machine.stall_per_load
    if not opts.rcm:
        lat *= machine.unordered_latency_factor
    if simd:
        lat *= machine.simd_gather_factor
    if opts.prefetch:
        lat *= machine.prefetch_stall_factor
    if opts.strategy == "coloring":
        lat *= machine.coloring_stall_factor
    stall = loads * lat
    cycles = compute + stall
    if opts.strategy == "atomic":
        cycles += opts.atomics_per_edge * machine.atomic_cycles
    return cycles


def edge_loop_time(
    machine: MachineModel, work: EdgeKernelWork, opts: EdgeLoopOptions
) -> float:
    """Modeled seconds of one edge-kernel sweep.

    Per-thread time is the max of the cycle model and that thread's share
    of DRAM bandwidth (roofline); the sweep time is the slowest thread
    (computed from the *actual* per-thread edge counts when the strategy
    replicates work) plus a closing barrier.
    """
    t = max(opts.n_threads, 1)
    cyc = _edge_cycles(machine, work, opts)

    if opts.strategy == "sequential" or t == 1:
        edges_max = float(work.n_edges)
        total_edges = float(work.n_edges)
        t = 1
    elif opts.edges_per_thread is not None:
        edges_max = float(np.max(opts.edges_per_thread))
        total_edges = float(np.sum(opts.edges_per_thread))
    else:
        edges_max = float(np.ceil(work.n_edges / t))
        total_edges = float(work.n_edges)

    # SMT: 2 threads share a core's pipelines, so the per-thread issue rate
    # is freq * threads_to_cores(t) / t
    thread_rate = machine.freq_hz * machine.threads_to_cores(t) / t
    compute_time = edges_max * cyc / thread_rate
    mem_time = total_edges * work.dram_bytes_per_edge / machine.bandwidth(t)
    time = max(compute_time, mem_time)
    if t > 1:
        # coloring pays one barrier per color; other strategies one per sweep
        n_barriers = max(opts.n_colors, 1) if opts.strategy == "coloring" else 1
        time += n_barriers * machine.barrier_seconds(t)
        time += machine.dispatch_seconds()
    return time


# ---------------------------------------------------------------------------
# Sparse narrow-band recurrences (TRSV / ILU)
# ---------------------------------------------------------------------------
@dataclass
class TriSolveOptions:
    """Execution strategy of a sparse triangular recurrence."""

    n_threads: int = 1
    strategy: str = "sequential"  # sequential | level | p2p
    simd: bool = False
    #: widths of the dependency levels (from LevelSchedule.widths())
    level_widths: np.ndarray | None = None
    #: per-level off-diagonal block counts (len == n_levels)
    level_blocks: np.ndarray | None = None
    #: retained cross-thread dependencies (from p2p.cross_thread_syncs)
    cross_deps: int = 0
    #: access-ordered factor storage (PETSc's layout optimization)
    access_ordered: bool = True
    #: available parallelism of the dependency graph (total work over
    #: critical-path work, the paper's Table II metric).  Limited
    #: parallelism keeps threads from streaming independently, throttling
    #: achieved bandwidth: the utilization factor is
    #: ``min(1, parallelism / (machine.recurrence_balance_factor * threads))``.
    available_parallelism: float = float("inf")


def _utilization(machine: MachineModel, opts: TriSolveOptions, t: int) -> float:
    if not np.isfinite(opts.available_parallelism):
        return 1.0
    return min(
        1.0,
        opts.available_parallelism / (machine.recurrence_balance_factor * t),
    )


def _block_rate(machine: MachineModel, n_threads: int, simd: bool) -> float:
    """Flop rate for streams of small (4x4) block ops.

    Tiny blocks cannot fill AVX pipelines; ``machine.block_simd_boost``
    (~17% by default) is all that manual vectorization of 4x4 multiplies
    buys (the paper: "performance benefits with vectorization are not very
    significant" for these kernels).
    """
    base = machine.flop_rate(n_threads, simd=False)
    return base * (machine.block_simd_boost if simd else 1.0)


def _tri_bytes_flops(
    nnzb: int, n: int, b: int, traffic_factor: float = 1.0
) -> tuple[float, float]:
    """(bytes, flops) of one triangular sweep over ``nnzb`` blocks."""
    block_bytes = b * b * _F8 + 8.0  # block values + column index
    vec_bytes = n * (3 * b * _F8 + b * b * _F8)  # x, y, rhs + inverted diag
    bytes_total = nnzb * block_bytes * traffic_factor + vec_bytes
    flops = nnzb * 2.0 * b * b + n * 2.0 * b * b
    return bytes_total, flops


def trsv_time(
    machine: MachineModel,
    nnzb: int,
    n: int,
    b: int,
    opts: TriSolveOptions,
) -> float:
    """Modeled seconds of one forward+backward blocked triangular solve."""
    t = max(opts.n_threads, 1)
    traffic = 1.0 if opts.access_ordered else machine.unordered_traffic_factor
    bytes_total, flops = _tri_bytes_flops(nnzb, n, b, traffic)
    rate = _block_rate(machine, t, opts.simd)

    if opts.strategy == "sequential" or t == 1:
        return max(flops / _block_rate(machine, 1, opts.simd),
                   bytes_total / machine.bandwidth(1))

    if opts.strategy == "level":
        widths = opts.level_widths
        blocks = opts.level_blocks
        if widths is None or blocks is None:
            raise ValueError("level strategy needs level_widths/level_blocks")
        total = 0.0
        n_rows = float(widths.sum())
        for w, nb in zip(widths, blocks):
            if w == 0:
                continue
            # imbalance: a level of width w occupies ceil(w/t) row-slots
            imb = np.ceil(w / t) * t / w
            frac = (nb * (b * b * _F8 + 8.0) * traffic + (w / n_rows) *
                    (bytes_total - nnzb * (b * b * _F8 + 8.0) * traffic))
            lvl_flops = nb * 2.0 * b * b + w * 2.0 * b * b
            lvl = max(lvl_flops / rate, frac / machine.bandwidth(t)) * imb
            total += lvl + machine.barrier_seconds(t)
        return total + machine.dispatch_seconds()

    if opts.strategy == "p2p":
        util = _utilization(machine, opts, t)
        base = max(
            flops / (rate * util),
            bytes_total / (machine.bandwidth(t) * util),
        )
        sync = opts.cross_deps * machine.p2p_seconds() / t
        # residual imbalance: the tail of the dependency graph still
        # serializes a little
        return (base * machine.trsv_p2p_tail_factor + sync
                + machine.dispatch_seconds())

    raise ValueError(f"unknown strategy {opts.strategy!r}")


def ilu_time(
    machine: MachineModel,
    block_ops: int,
    nnzb: int,
    n: int,
    b: int,
    opts: TriSolveOptions,
    compressed_buffer: bool = True,
) -> float:
    """Modeled seconds of one numeric ILU factorization.

    ``block_ops`` counts 4x4 multiply-update operations (from
    ``ILUPlan.factor_block_ops``).  The factorization re-reads pivot rows,
    so its traffic multiplier exceeds TRSV's; without the compressed
    temporary buffer (the paper's "algorithmic optimization") threading
    inflates the working set and traffic further.
    """
    t = max(opts.n_threads, 1)
    flops = block_ops * 2.0 * b**3 + n * (2.0 / 3.0) * b**3  # + inversions
    traffic_factor = (
        2.0 if compressed_buffer
        else 2.0 + machine.ilu_buffer_traffic_per_thread * t
    )
    bytes_total = nnzb * (b * b * _F8 + 8.0) * traffic_factor

    # gather irregularity: ILU's access pattern is less regular than TRSV's
    # streaming, so its achievable rate/bandwidth efficiency is lower (the
    # paper: "achieved bandwidth efficiency is not as high as TRSV").
    eff_bw = machine.ilu_bw_efficiency
    rate = _block_rate(machine, t, opts.simd) * machine.ilu_rate_factor

    if opts.strategy == "sequential" or t == 1:
        return max(
            flops / (_block_rate(machine, 1, opts.simd)
                     * machine.ilu_rate_factor),
            bytes_total / (machine.bandwidth(1) * eff_bw),
        )

    if opts.strategy == "level":
        widths = opts.level_widths
        if widths is None:
            raise ValueError("level strategy needs level_widths")
        total = 0.0
        n_rows = float(widths.sum())
        for w in widths:
            if w == 0:
                continue
            imb = np.ceil(w / t) * t / w
            share = w / n_rows
            lvl = max(
                share * flops / rate,
                share * bytes_total / (machine.bandwidth(t) * eff_bw),
            ) * imb
            total += lvl + machine.barrier_seconds(t)
        return total + machine.dispatch_seconds()

    if opts.strategy == "p2p":
        util = _utilization(machine, opts, t)
        # access-ordered factor storage + sparsified synchronization let the
        # threaded factorization stream better than the level-barrier walk
        base = max(
            flops / (rate * machine.ilu_p2p_rate_factor * util),
            bytes_total / (machine.bandwidth(t) * eff_bw * util),
        )
        sync = opts.cross_deps * machine.p2p_seconds() / t
        return (base * machine.ilu_p2p_tail_factor + sync
                + machine.dispatch_seconds())

    raise ValueError(f"unknown strategy {opts.strategy!r}")


# ---------------------------------------------------------------------------
# Vertex loops and vector primitives
# ---------------------------------------------------------------------------
def vertex_loop_time(
    machine: MachineModel, n_vertices: int, bytes_per_vertex: float,
    flops_per_vertex: float, n_threads: int
) -> float:
    """Streaming vertex update (state updates, DAXPY-like): pure roofline."""
    t = max(n_threads, 1)
    compute = n_vertices * flops_per_vertex / machine.flop_rate(t, simd=True)
    mem = n_vertices * bytes_per_vertex / machine.bandwidth(t)
    time = max(compute, mem)
    if t > 1:
        time += machine.barrier_seconds(t)
    return time


def vector_op_time(
    machine: MachineModel, nbytes: float, flops: float, n_threads: int
) -> float:
    """PETSc vector primitive: bandwidth-bound streaming op."""
    t = max(n_threads, 1)
    time = max(
        flops / machine.flop_rate(t, simd=True), nbytes / machine.bandwidth(t)
    )
    if t > 1:
        time += machine.barrier_seconds(t)
    return time
