"""Exporters: Chrome ``trace_event`` JSON and a JSONL event log.

Chrome traces load directly in ``chrome://tracing`` or https://ui.perfetto.dev
— each span becomes a complete event (``ph: "X"``) with microsecond
``ts``/``dur``, each instant event a ``ph: "i"`` mark.  The JSONL log is the
machine-readable archive format: one self-contained JSON object per line
(spans flattened with id/parent links, then events, then metric snapshots),
and :func:`read_jsonl` reconstructs the span forest so round-tripping a
trace is lossless.
"""

from __future__ import annotations

import json
from typing import Any, Iterable, Sequence

from .metrics import MetricsRegistry
from .span import NullTracer, Span, TraceEvent, Tracer

__all__ = [
    "chrome_trace",
    "write_chrome_trace",
    "jsonl_records",
    "write_jsonl",
    "read_jsonl",
]


def _clean(value: Any) -> Any:
    """Coerce attrs (numpy scalars etc.) into JSON-serializable values."""
    if isinstance(value, dict):
        return {str(k): _clean(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_clean(v) for v in value]
    if isinstance(value, (str, bool, int, float)) or value is None:
        return value
    if hasattr(value, "item"):  # numpy scalar
        return value.item()
    return str(value)


def _span_args(s: Span) -> dict[str, Any]:
    args = dict(_clean(s.attrs))
    if s.model_seconds:
        args["model_seconds"] = s.model_seconds
    if s.flops:
        args["flops"] = s.flops
    if s.bytes:
        args["bytes"] = s.bytes
    return args


def chrome_trace(
    tracer: Tracer | NullTracer,
    *,
    pid: int = 1,
    tid: int = 1,
) -> dict[str, Any]:
    """Chrome ``trace_event`` document for a finished tracer.

    Timestamps are rebased so the earliest span/event sits at ts=0 (Chrome
    renders absolute ``perf_counter`` origins poorly).
    """
    roots: Sequence[Span] = list(tracer.roots)
    events: Sequence[TraceEvent] = list(tracer.events)
    t_min = min(
        [s.t0 for s in roots] + [e.ts for e in events], default=0.0
    )
    trace_events: list[dict[str, Any]] = []
    for root in roots:
        for s in root.walk():
            trace_events.append(
                {
                    "name": s.name,
                    "ph": "X",
                    "ts": (s.t0 - t_min) * 1e6,
                    "dur": s.seconds * 1e6,
                    "pid": pid,
                    "tid": tid,
                    "cat": "span",
                    "args": _span_args(s),
                }
            )
    for e in events:
        trace_events.append(
            {
                "name": e.name,
                "ph": "i",
                "s": "t",  # thread-scoped instant
                "ts": (e.ts - t_min) * 1e6,
                "pid": pid,
                "tid": tid,
                "cat": "event",
                "args": _clean(e.attrs),
            }
        )
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def write_chrome_trace(tracer: Tracer | NullTracer, path: str, **kw: Any) -> None:
    with open(path, "w") as f:
        json.dump(chrome_trace(tracer, **kw), f, indent=1)


# ----------------------------------------------------------------------
def jsonl_records(
    tracer: Tracer | NullTracer | None = None,
    metrics: MetricsRegistry | None = None,
) -> list[dict[str, Any]]:
    """Flatten a trace + metrics into an ordered list of JSONL records."""
    records: list[dict[str, Any]] = []
    if tracer is not None:
        next_id = 0
        stack: list[tuple[Span, int | None]] = [
            (r, None) for r in reversed(list(tracer.roots))
        ]
        while stack:
            s, parent = stack.pop()
            sid = next_id
            next_id += 1
            records.append(
                {
                    "type": "span",
                    "id": sid,
                    "parent": parent,
                    "name": s.name,
                    "t0": s.t0,
                    "t1": s.t1,
                    "model_seconds": s.model_seconds,
                    "flops": s.flops,
                    "bytes": s.bytes,
                    "attrs": _clean(s.attrs),
                }
            )
            for c in reversed(s.children):
                stack.append((c, sid))
        for e in tracer.events:
            records.append(
                {
                    "type": "event",
                    "name": e.name,
                    "ts": e.ts,
                    "attrs": _clean(e.attrs),
                }
            )
    if metrics is not None:
        records.extend(metrics.snapshot())
    return records


def write_jsonl(
    path: str,
    tracer: Tracer | NullTracer | None = None,
    metrics: MetricsRegistry | None = None,
) -> None:
    with open(path, "w") as f:
        for rec in jsonl_records(tracer, metrics):
            f.write(json.dumps(rec) + "\n")


def read_jsonl(
    source: str | Iterable[str],
) -> tuple[list[Span], list[TraceEvent], list[dict[str, Any]]]:
    """Parse a JSONL log back into (span roots, events, metric snapshots).

    ``source`` is a path or an iterable of lines.  Span parent links are
    resolved so the returned roots form the same forest that was written.
    """
    if isinstance(source, str):
        with open(source) as f:
            lines = f.read().splitlines()
    else:
        lines = [ln for ln in source]

    roots: list[Span] = []
    by_id: dict[int, Span] = {}
    events: list[TraceEvent] = []
    metric_rows: list[dict[str, Any]] = []
    for line in lines:
        line = line.strip()
        if not line:
            continue
        rec = json.loads(line)
        kind = rec.get("type")
        if kind == "span":
            s = Span(
                rec["name"],
                t0=rec["t0"],
                t1=rec["t1"],
                model_seconds=rec.get("model_seconds", 0.0),
                flops=rec.get("flops", 0.0),
                bytes=rec.get("bytes", 0.0),
                attrs=rec.get("attrs", {}),
            )
            by_id[rec["id"]] = s
            parent = rec.get("parent")
            if parent is None:
                roots.append(s)
            else:
                by_id[parent].children.append(s)
        elif kind == "event":
            events.append(
                TraceEvent(rec["name"], ts=rec["ts"], attrs=rec.get("attrs", {}))
            )
        else:
            metric_rows.append(rec)
    return roots, events, metric_rows
