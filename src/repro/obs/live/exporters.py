"""Prometheus text exposition, a /metrics HTTP server, and OTLP traces.

Three export surfaces over the existing obs model plus the live planes:

* :func:`prometheus_text` — text exposition format 0.0.4: every registry
  counter/gauge/histogram plus one ``repro_live_*`` family per telemetry
  slot, labeled by producing process, so a scrape mid-solve sees per-worker
  and per-rank rates/spin fractions while the fleet is still running.
* :class:`MetricsServer` — a ThreadingHTTPServer daemon serving /metrics,
  started by ``--metrics-serve PORT`` (port 0 picks an ephemeral port).
* :func:`otlp_trace` — the span forest in OTLP/JSON shape
  (resourceSpans → scopeSpans → spans with hex ids and unix-nano times),
  alongside the existing Chrome-trace export.
"""

from __future__ import annotations

import json
import re
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable

from ..export import _clean

__all__ = [
    "prometheus_text",
    "write_prometheus",
    "MetricsServer",
    "otlp_trace",
    "write_otlp_trace",
]

_NAME_RE = re.compile(r"[^a-zA-Z0-9_]")


def _prom_name(name: str) -> str:
    return _NAME_RE.sub("_", name)


def _fmt(value: float) -> str:
    return repr(float(value))


def _registry_lines(metrics) -> list[str]:
    lines: list[str] = []
    # a background writer may add instruments mid-iteration; retry the
    # whole pass rather than lock the hot path
    for _ in range(4):
        try:
            lines = []
            for c in list(metrics.counters.values()):
                n = f"repro_{_prom_name(c.name)}_total"
                lines.append(f"# TYPE {n} counter")
                lines.append(f"{n} {_fmt(c.value)}")
            for g in list(metrics.gauges.values()):
                n = f"repro_{_prom_name(g.name)}"
                lines.append(f"# TYPE {n} gauge")
                lines.append(f"{n} {_fmt(g.value)}")
            for h in list(metrics.histograms.values()):
                n = f"repro_{_prom_name(h.name)}"
                lines.append(f"# TYPE {n} histogram")
                cum = 0
                for edge, cnt in zip(h.edges, h.counts):
                    cum += cnt
                    lines.append(f'{n}_bucket{{le="{edge}"}} {cum}')
                lines.append(f'{n}_bucket{{le="+Inf"}} {h.count}')
                lines.append(f"{n}_sum {_fmt(h.sum)}")
                lines.append(f"{n}_count {h.count}")
            break
        except RuntimeError:  # dict changed size during iteration
            continue
    return lines


def _plane_lines(planes, now: float | None = None) -> list[str]:
    now = time.monotonic() if now is None else now
    snaps = []
    for plane in planes:
        snaps.extend(plane.snapshot_all().values())
    lines: list[str] = []
    up, age, state, hb = [], [], [], []
    slot_series: dict[str, list[str]] = {}
    for s in snaps:
        label = f'{{proc="{s.name}"}}'
        up.append(f"repro_live_up{label} {1 if s.pid else 0}")
        if s.pid == 0:
            continue
        age.append(
            f"repro_live_heartbeat_age_seconds{label} {_fmt(s.heartbeat_age(now))}"
        )
        state.append(f"repro_live_state{label} {s.state}")
        hb.append(f"repro_live_heartbeats_total{label} {s.hb}")
        for slot, val in s.slots.items():
            slot_series.setdefault(_prom_name(slot), []).append(
                f"repro_live_{_prom_name(slot)}{label} {_fmt(val)}"
            )
    if up:
        lines.append("# TYPE repro_live_up gauge")
        lines.extend(up)
    if age:
        lines.append("# TYPE repro_live_heartbeat_age_seconds gauge")
        lines.extend(age)
        lines.append("# TYPE repro_live_state gauge")
        lines.extend(state)
        lines.append("# TYPE repro_live_heartbeats_total counter")
        lines.extend(hb)
    for slot in sorted(slot_series):
        lines.append(f"# TYPE repro_live_{slot} gauge")
        lines.extend(slot_series[slot])
    return lines


def prometheus_text(metrics=None, planes=None) -> str:
    """Render registry + live-plane series in Prometheus text format."""
    if planes is None:
        from .plane import live_planes

        planes = live_planes()
    lines: list[str] = []
    if metrics is not None:
        lines.extend(_registry_lines(metrics))
    lines.extend(_plane_lines(planes))
    try:
        from ...smp.shm import total_shm_bytes

        lines.append("# TYPE repro_shm_bytes gauge")
        lines.append(f"repro_shm_bytes {total_shm_bytes()}")
    except ImportError:  # pragma: no cover
        pass
    return "\n".join(lines) + "\n"


def write_prometheus(path: str, metrics=None, planes=None) -> None:
    """One-shot ``.prom`` export (``--metrics-prom``)."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(prometheus_text(metrics, planes))


# ---------------------------------------------------------------------------
# /metrics server
# ---------------------------------------------------------------------------
class MetricsServer:
    """Serves ``provider()`` text on /metrics from a daemon thread."""

    def __init__(
        self,
        provider: Callable[[], str],
        port: int = 0,
        host: str = "127.0.0.1",
    ) -> None:
        self.provider = provider

        outer = self

        class _Handler(BaseHTTPRequestHandler):
            def do_GET(self):  # noqa: N802 - http.server API
                if self.path.rstrip("/") in ("", "/metrics", "/healthz"):
                    try:
                        body = outer.provider().encode()
                    except Exception as exc:  # pragma: no cover
                        self.send_error(500, str(exc))
                        return
                    self.send_response(200)
                    self.send_header(
                        "Content-Type", "text/plain; version=0.0.4"
                    )
                    self.send_header("Content-Length", str(len(body)))
                    self.end_headers()
                    self.wfile.write(body)
                else:
                    self.send_error(404)

            def log_message(self, *args):  # silence per-request stderr spam
                pass

        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.daemon_threads = True
        self.host = host
        self.port = self._httpd.server_address[1]
        self.url = f"http://{host}:{self.port}/metrics"
        self._thread: threading.Thread | None = None

    def start(self) -> "MetricsServer":
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-metrics-server",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None


# ---------------------------------------------------------------------------
# OTLP-shaped trace export
# ---------------------------------------------------------------------------
def _hex_id(n: int, width: int) -> str:
    return format(n, "x").zfill(width)[-width:]


def otlp_trace(tracer, service_name: str = "repro") -> dict:
    """The span forest as an OTLP/JSON ``ExportTraceServiceRequest``.

    Span clocks are ``perf_counter``-based; they are rebased to unix nanos
    with a single offset captured at export time, which preserves every
    relative duration exactly.
    """
    offset = time.time() - time.perf_counter()
    spans: list[dict] = []
    next_id = iter(range(1, 1 << 62)).__next__

    def emit(span, trace_id: str, parent_id: str | None) -> None:
        sid = _hex_id(next_id(), 16)
        rec = {
            "traceId": trace_id,
            "spanId": sid,
            "name": span.name,
            "kind": 1,  # SPAN_KIND_INTERNAL
            "startTimeUnixNano": str(int((span.t0 + offset) * 1e9)),
            "endTimeUnixNano": str(int((span.t1 + offset) * 1e9)),
            "attributes": [
                {"key": str(k), "value": _otlp_value(v)}
                for k, v in _clean(span.attrs).items()
            ],
        }
        if parent_id is not None:
            rec["parentSpanId"] = parent_id
        spans.append(rec)
        for child in span.children:
            emit(child, trace_id, sid)

    for i, root in enumerate(tracer.roots):
        emit(root, _hex_id(i + 1, 32), None)

    return {
        "resourceSpans": [
            {
                "resource": {
                    "attributes": [
                        {
                            "key": "service.name",
                            "value": {"stringValue": service_name},
                        }
                    ]
                },
                "scopeSpans": [
                    {"scope": {"name": "repro.obs"}, "spans": spans}
                ],
            }
        ]
    }


def _otlp_value(v) -> dict:
    if isinstance(v, bool):
        return {"boolValue": v}
    if isinstance(v, int):
        return {"intValue": str(v)}
    if isinstance(v, float):
        return {"doubleValue": v}
    return {"stringValue": str(v)}


def write_otlp_trace(tracer, path: str, service_name: str = "repro") -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(otlp_trace(tracer, service_name), fh, indent=2)
