"""Telemetry planes: per-process rings bundled over a shared pool.

A :class:`TelemetryPlane` allocates the ctl/times/slots/events arrays of
:mod:`.ring` for a set of named processes — either inside a
:class:`~repro.smp.shm.SharedArrayPool` (cross-process: backends allocate
the plane in the same pool as their work arrays, so forked workers inherit
the views and the existing /dev/shm cleanup covers telemetry segments too)
or as plain numpy arrays for in-process producers like the solver loop.

Planes self-register in a process-global registry; the Prometheus exporter,
``repro top`` and the flight recorder all read whatever planes are live.
The ambient-writer stack (:func:`use_live_writer` / :func:`get_live_writer`)
mirrors ``use_metrics`` so deep solver code can publish without threading a
writer through every signature.  The :class:`TelemetryAggregator` polls the
registry into a ``MetricsRegistry`` (``live.*`` gauges) and feeds the health
monitor and flight recorder.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Callable, Iterator, Mapping, Sequence

import numpy as np

from .ring import (
    CTL_WIDTH,
    EV_WIDTH,
    TIME_WIDTH,
    ProcSnapshot,
    RingEvent,
    TelemetryReader,
    TelemetryWriter,
)

__all__ = [
    "DEFAULT_EVENTS",
    "TelemetryPlane",
    "TelemetryAggregator",
    "register_plane",
    "unregister_plane",
    "live_planes",
    "use_live_writer",
    "get_live_writer",
]

#: Event names shared by every plane (codes are indices into this tuple).
DEFAULT_EVENTS = (
    "task_done",
    "task_error",
    "worker_death",
    "rank_error",
    "health",
    "note",
)


class TelemetryPlane:
    """Ctl/slots/event arrays for a set of named processes.

    ``procs`` maps process name -> slot-name tuple (different processes may
    expose different slots).  With ``pool`` set, arrays are allocated there
    under ``tm.<proc>.*`` keys and the pool's owner handles unlinking; with
    ``shared=True`` and no pool, the plane owns a private pool; otherwise
    plain (process-local) numpy arrays back the rings.
    """

    def __init__(
        self,
        procs: Mapping[str, Sequence[str]],
        capacity: int = 256,
        events: Sequence[str] = DEFAULT_EVENTS,
        pool=None,
        shared: bool = True,
        register: bool = True,
    ) -> None:
        self.procs = {n: tuple(s) for n, s in procs.items()}
        self.capacity = int(capacity)
        self.event_names = tuple(events)
        self._owns_pool = False
        self._closed = False
        if pool is None and shared:
            from ...smp.shm import SharedArrayPool

            pool = SharedArrayPool()
            self._owns_pool = True
        self._pool = pool
        self._arrays: dict[str, tuple[np.ndarray, ...]] = {}
        for name, slot_names in self.procs.items():
            shapes = (
                ("ctl", (CTL_WIDTH,), np.int64),
                ("times", (TIME_WIDTH,), np.float64),
                ("slots", (max(1, len(slot_names)),), np.float64),
                ("ev", (self.capacity, EV_WIDTH), np.float64),
            )
            if pool is not None:
                arrs = tuple(
                    pool.zeros(f"tm.{name}.{part}", shape, dtype)
                    for part, shape, dtype in shapes
                )
            else:
                arrs = tuple(np.zeros(shape, dtype) for _, shape, dtype in shapes)
            self._arrays[name] = arrs
        self._readers: dict[str, TelemetryReader] = {}
        if register:
            register_plane(self)

    # ------------------------------------------------------------------
    def writer(self, name: str) -> TelemetryWriter:
        ctl, times, slots, ev = self._arrays[name]
        return TelemetryWriter(
            name, self.procs[name], self.event_names, ctl, times, slots, ev
        )

    def reader(self, name: str) -> TelemetryReader:
        """Cached reader (its ring tail must persist across drains)."""
        r = self._readers.get(name)
        if r is None:
            ctl, times, slots, ev = self._arrays[name]
            r = TelemetryReader(
                name, self.procs[name], self.event_names, ctl, times, slots, ev
            )
            self._readers[name] = r
        return r

    # ------------------------------------------------------------------
    def snapshot_all(self) -> dict[str, ProcSnapshot]:
        if self._closed:
            return {}
        return {n: self.reader(n).snapshot() for n in self.procs}

    def drain_all(self) -> list[RingEvent]:
        if self._closed:
            return []
        out: list[RingEvent] = []
        for n in self.procs:
            out.extend(self.reader(n).drain_events())
        return out

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Unregister; unlink segments only if the plane owns its pool."""
        if self._closed:
            return
        self._closed = True
        unregister_plane(self)
        if self._owns_pool and self._pool is not None:
            self._pool.close()

    def __enter__(self) -> "TelemetryPlane":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# ---------------------------------------------------------------------------
# process-global plane registry
# ---------------------------------------------------------------------------
_planes: list[TelemetryPlane] = []
_planes_lock = threading.Lock()


def register_plane(plane: TelemetryPlane) -> None:
    with _planes_lock:
        if plane not in _planes:
            _planes.append(plane)


def unregister_plane(plane: TelemetryPlane) -> None:
    with _planes_lock:
        if plane in _planes:
            _planes.remove(plane)


def live_planes() -> list[TelemetryPlane]:
    with _planes_lock:
        return list(_planes)


# ---------------------------------------------------------------------------
# ambient writer (mirrors use_metrics / use_tracer)
# ---------------------------------------------------------------------------
_writer_stack: list[TelemetryWriter] = []


def get_live_writer() -> TelemetryWriter | None:
    return _writer_stack[-1] if _writer_stack else None


@contextmanager
def use_live_writer(writer: TelemetryWriter) -> Iterator[TelemetryWriter]:
    _writer_stack.append(writer)
    depth = len(_writer_stack)
    try:
        yield writer
    finally:
        del _writer_stack[depth - 1 :]


# ---------------------------------------------------------------------------
# aggregator
# ---------------------------------------------------------------------------
class TelemetryAggregator:
    """Polls live planes into a MetricsRegistry + health/flight pipeline.

    ``poll_once`` is synchronous (tests, one-shot exports); ``start`` runs
    it on a daemon thread every ``interval`` seconds.
    """

    def __init__(
        self,
        metrics=None,
        recorder=None,
        health=None,
        interval: float = 1.0,
        on_health: Callable | None = None,
    ) -> None:
        self.metrics = metrics
        self.recorder = recorder
        self.health = health
        self.interval = float(interval)
        self.on_health = on_health
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()

    def poll_once(self, planes=None, now: float | None = None):
        now = time.monotonic() if now is None else now
        snaps: dict[str, ProcSnapshot] = {}
        events: list[RingEvent] = []
        for plane in live_planes() if planes is None else planes:
            snaps.update(plane.snapshot_all())
            events.extend(plane.drain_all())
        if self.metrics is not None:
            for name, s in snaps.items():
                if s.pid == 0:  # never said hello
                    continue
                for slot, val in s.slots.items():
                    self.metrics.gauge(f"live.{name}.{slot}").set(val)
                self.metrics.gauge(f"live.{name}.heartbeat_age").set(
                    s.heartbeat_age(now)
                )
        if self.recorder is not None:
            for ev in events:
                self.recorder.record(
                    "plane_event", proc=ev.proc, name=ev.name, ts=ev.ts,
                    a=ev.a, b=ev.b,
                )
        health_events = []
        if self.health is not None:
            health_events = self.health.check(snaps, now=now)
            for he in health_events:
                if self.metrics is not None:
                    self.metrics.counter(f"health.{he.kind}").inc()
                if self.recorder is not None:
                    self.recorder.record(
                        "health", kind=he.kind, proc=he.proc, **he.detail
                    )
                if self.on_health is not None:
                    self.on_health(he)
        return snaps, events, health_events

    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._thread is not None:
            return
        self._stop.clear()

        def _loop() -> None:
            while not self._stop.wait(self.interval):
                try:
                    self.poll_once()
                except Exception:  # pragma: no cover - keep polling alive
                    pass

        self._thread = threading.Thread(
            target=_loop, name="repro-telemetry-agg", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join(timeout=5.0)
        self._thread = None
        try:
            self.poll_once()  # final drain
        except Exception:
            pass
