"""Seqlock metric slots and SPSC event rings over plain numpy arrays.

The live telemetry plane's wire format.  Each instrumented process owns a
fixed set of float64 metric *slots* plus a bounded event ring; a single
version counter (seqlock) guards the slot block so the parent can read a
consistent snapshot without any lock: the writer makes the version odd,
mutates, then makes it even again, and the reader retries whenever the
version is odd or changed across the copy.  The event ring is
single-producer/single-consumer with a monotone head cursor: the reader
keeps its own tail, and after copying it re-reads the head and discards any
records the writer might have overwritten in the meantime, so overruns drop
events but never yield torn ones.

All buffers are views into caller-provided numpy arrays, so the same code
runs over ``/dev/shm`` segments (:class:`repro.smp.shm.SharedArrayPool`)
for cross-process planes or over ordinary arrays for in-process ones.
Int64/float64 element stores are single aligned 8-byte writes under
CPython, which is what the seqlock protocol relies on.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "CTL_WIDTH",
    "TIME_WIDTH",
    "EV_WIDTH",
    "STATE_INIT",
    "STATE_IDLE",
    "STATE_BUSY",
    "STATE_SPIN",
    "STATE_NAMES",
    "ProcSnapshot",
    "TelemetryWriter",
    "TelemetryReader",
]

# ctl row layout (int64)
CTL_VER = 0  # seqlock version: odd while a slot write is in flight
CTL_PID = 1  # writer pid, stamped by hello()
CTL_HB = 2  # heartbeat counter
CTL_STATE = 3  # STATE_* code
CTL_EV_HEAD = 4  # monotone event-ring write cursor
CTL_WIDTH = 6  # one spare

# times row layout (float64)
TIME_HB = 0  # monotonic timestamp of the last heartbeat
TIME_START = 1  # monotonic timestamp of hello()
TIME_WIDTH = 2

# event record layout (float64): (code, ts, a, b)
EV_WIDTH = 4

STATE_INIT = 0
STATE_IDLE = 1
STATE_BUSY = 2
STATE_SPIN = 3
STATE_NAMES = {
    STATE_INIT: "init",
    STATE_IDLE: "idle",
    STATE_BUSY: "busy",
    STATE_SPIN: "spin",
}


@dataclass
class ProcSnapshot:
    """One consistent read of a process's telemetry row."""

    name: str
    pid: int
    hb: int
    hb_time: float
    start_time: float
    state: int
    slots: dict[str, float]
    ev_head: int
    ok: bool  # False if the seqlock never settled within the retry budget

    @property
    def state_name(self) -> str:
        return STATE_NAMES.get(self.state, str(self.state))

    def heartbeat_age(self, now: float | None = None) -> float:
        if self.hb == 0:
            return 0.0
        now = time.monotonic() if now is None else now
        return max(0.0, now - self.hb_time)


@dataclass
class RingEvent:
    """One decoded event-ring record."""

    proc: str
    name: str
    ts: float
    a: float
    b: float


class TelemetryWriter:
    """Producer side of one process's telemetry row.

    Created in the parent (the arrays typically live in a shared pool) and
    used by exactly one process after ``hello()``.  Slot writes go through
    the seqlock; the heartbeat/state/event-cursor words are single aligned
    stores and need no versioning.
    """

    def __init__(
        self,
        name: str,
        slot_names: tuple[str, ...],
        event_names: tuple[str, ...],
        ctl: np.ndarray,
        times: np.ndarray,
        slots: np.ndarray,
        events: np.ndarray,
        clock=time.monotonic,
    ) -> None:
        self.name = name
        self.slot_names = tuple(slot_names)
        self.event_names = tuple(event_names)
        self._idx = {n: i for i, n in enumerate(self.slot_names)}
        self._ev_idx = {n: i for i, n in enumerate(self.event_names)}
        self._ctl = ctl
        self._times = times
        self._slots = slots
        self._events = events
        self._cap = events.shape[0]
        self._clock = clock

    # -- liveness ------------------------------------------------------
    def hello(self, state: int = STATE_IDLE) -> None:
        """Stamp pid + start time; call once from the owning process."""
        self._ctl[CTL_PID] = os.getpid()
        self._times[TIME_START] = self._clock()
        self.heartbeat(state)

    def heartbeat(self, state: int | None = None) -> None:
        if state is not None:
            self._ctl[CTL_STATE] = state
        self._times[TIME_HB] = self._clock()
        self._ctl[CTL_HB] += 1

    # -- slots ---------------------------------------------------------
    def update(self, **values: float) -> None:
        """Set named slots (unknown names are ignored) under the seqlock."""
        ctl, idx = self._ctl, self._idx
        ctl[CTL_VER] += 1  # odd: write in flight
        for k, v in values.items():
            i = idx.get(k)
            if i is not None:
                self._slots[i] = v
        ctl[CTL_VER] += 1  # even again
        self.heartbeat()

    def add(self, **deltas: float) -> None:
        """Accumulate into named slots under the seqlock."""
        ctl, idx = self._ctl, self._idx
        ctl[CTL_VER] += 1
        for k, v in deltas.items():
            i = idx.get(k)
            if i is not None:
                self._slots[i] += v
        ctl[CTL_VER] += 1
        self.heartbeat()

    # -- events --------------------------------------------------------
    def push_event(self, name: str, a: float = 0.0, b: float = 0.0) -> None:
        """Append one record to the bounded ring (oldest overwritten)."""
        code = self._ev_idx.get(name, -1)
        head = int(self._ctl[CTL_EV_HEAD])
        rec = self._events[head % self._cap]
        rec[0] = code
        rec[1] = self._clock()
        rec[2] = a
        rec[3] = b
        self._ctl[CTL_EV_HEAD] = head + 1


class TelemetryReader:
    """Consumer side: lock-free snapshots + event drains for one row."""

    def __init__(
        self,
        name: str,
        slot_names: tuple[str, ...],
        event_names: tuple[str, ...],
        ctl: np.ndarray,
        times: np.ndarray,
        slots: np.ndarray,
        events: np.ndarray,
    ) -> None:
        self.name = name
        self.slot_names = tuple(slot_names)
        self.event_names = tuple(event_names)
        self._ctl = ctl
        self._times = times
        self._slots = slots
        self._events = events
        self._cap = events.shape[0]
        self._tail = 0
        self.dropped = 0  # events lost to ring overruns, cumulative

    def snapshot(self, retries: int = 64) -> ProcSnapshot:
        """One seqlock-consistent copy of the slot block.

        Retries while a writer is mid-update; if the writer outruns every
        retry (pathological), the last copy is returned with ``ok=False``.
        """
        ctl = self._ctl
        vals = self._slots.copy()
        ok = False
        for _ in range(retries):
            v0 = int(ctl[CTL_VER])
            if v0 & 1:
                time.sleep(0)
                continue
            vals = self._slots.copy()
            if int(ctl[CTL_VER]) == v0:
                ok = True
                break
        return ProcSnapshot(
            name=self.name,
            pid=int(ctl[CTL_PID]),
            hb=int(ctl[CTL_HB]),
            hb_time=float(self._times[TIME_HB]),
            start_time=float(self._times[TIME_START]),
            state=int(ctl[CTL_STATE]),
            slots={n: float(vals[i]) for i, n in enumerate(self.slot_names)},
            ev_head=int(ctl[CTL_EV_HEAD]),
            ok=ok,
        )

    def drain_events(self) -> list[RingEvent]:
        """All events since the last drain, oldest first.

        On overrun the reader snaps forward: records the writer may have
        overwritten *during* the copy are discarded (checked by re-reading
        the head afterwards), so returned events are never torn.
        """
        head = int(self._ctl[CTL_EV_HEAD])
        if head == self._tail:
            return []
        lo = max(self._tail, head - self._cap)
        self.dropped += lo - self._tail
        raw = [(i, self._events[i % self._cap].copy()) for i in range(lo, head)]
        # anything below the post-copy safe line may have been overwritten
        # mid-copy; drop it rather than return a torn record
        head2 = int(self._ctl[CTL_EV_HEAD])
        safe = max(lo, head2 - self._cap)
        self.dropped += safe - lo
        self._tail = head
        out = []
        for i, rec in raw:
            if i < safe:
                continue
            code = int(rec[0])
            name = (
                self.event_names[code]
                if 0 <= code < len(self.event_names)
                else f"event{code}"
            )
            out.append(
                RingEvent(
                    proc=self.name,
                    name=name,
                    ts=float(rec[1]),
                    a=float(rec[2]),
                    b=float(rec[3]),
                )
            )
        return out
