"""``repro top``: live per-rank/per-worker view of a running solve.

Scrapes a ``--metrics-serve`` endpoint (attach mode) or spawns a solve
with one injected (spawn mode) and renders a plain-refresh table: per
process the heartbeat age and state, task/step rate (derived from deltas
between scrapes), spin fraction of busy time, and the latest residual.
Plain ANSI refresh rather than curses so output stays useful when piped
or captured (``--plain`` disables the escape codes entirely).
"""

from __future__ import annotations

import re
import sys
import time
import urllib.request

__all__ = ["parse_prometheus", "fetch_metrics", "render_table", "run_top"]

_SAMPLE_RE = re.compile(
    r'^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)'
    r'(?:\{(?P<labels>[^}]*)\})?\s+(?P<value>\S+)\s*$'
)
_LABEL_RE = re.compile(r'(\w+)="([^"]*)"')

_STATE_NAMES = {0: "init", 1: "idle", 2: "busy", 3: "spin"}


def parse_prometheus(text: str) -> dict[tuple[str, tuple], float]:
    """Minimal text-format parser: (name, sorted label items) -> value."""
    out: dict[tuple[str, tuple], float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        m = _SAMPLE_RE.match(line)
        if not m:
            continue
        labels = tuple(sorted(_LABEL_RE.findall(m.group("labels") or "")))
        try:
            out[(m.group("name"), labels)] = float(m.group("value"))
        except ValueError:
            continue
    return out


def fetch_metrics(url: str, timeout: float = 2.0) -> dict:
    with urllib.request.urlopen(url, timeout=timeout) as resp:
        return parse_prometheus(resp.read().decode())


# ---------------------------------------------------------------------------
def _live_procs(samples: dict) -> dict[str, dict[str, float]]:
    """Group repro_live_* series by proc label: proc -> {field: value}."""
    procs: dict[str, dict[str, float]] = {}
    for (name, labels), value in samples.items():
        if not name.startswith("repro_live_"):
            continue
        proc = dict(labels).get("proc")
        if proc is None:
            continue
        procs.setdefault(proc, {})[name[len("repro_live_"):]] = value
    return procs


def _rate(now: dict, prev: dict | None, field: str, dt: float) -> float | None:
    if prev is None or field not in now or field not in prev or dt <= 0:
        return None
    return max(0.0, now[field] - prev[field]) / dt


def render_table(
    samples: dict, prev: dict | None, dt: float, now_wall: float | None = None
) -> str:
    """One frame of the top view."""
    procs = _live_procs(samples)
    prev_procs = _live_procs(prev) if prev else {}
    hdr = (
        f"{'PROC':<16} {'STATE':<5} {'HB AGE':>7} {'RATE/S':>8} "
        f"{'SPIN%':>6} {'RESIDUAL':>10} {'STEP':>5}"
    )
    rows = [hdr, "-" * len(hdr)]
    for proc in sorted(procs):
        p = procs[proc]
        q = prev_procs.get(proc)
        state = _STATE_NAMES.get(int(p.get("state", 0)), "?")
        age = p.get("heartbeat_age_seconds")
        rate = None
        for counter in ("tasks", "step", "exchanges", "completed"):
            rate = _rate(p, q, counter, dt)
            if rate is not None:
                break
        dspin = _rate(p, q, "spin_seconds", dt)
        dbusy = _rate(p, q, "busy_seconds", dt)
        spin = (
            100.0 * dspin / dbusy
            if dspin is not None and dbusy and dbusy > 1e-9
            else None
        )
        res = p.get("residual")
        step = p.get("step")
        rows.append(
            f"{proc:<16} {state:<5} "
            + (f"{age:>7.1f}" if age is not None else f"{'-':>7}")
            + " "
            + (f"{rate:>8.1f}" if rate is not None else f"{'-':>8}")
            + " "
            + (f"{spin:>6.1f}" if spin is not None else f"{'-':>6}")
            + " "
            + (f"{res:>10.3e}" if res is not None else f"{'-':>10}")
            + " "
            + (f"{int(step):>5d}" if step is not None else f"{'-':>5}")
        )
    gmres = samples.get(("repro_gmres_iterations_total", ()))
    extra = []
    serve = procs.get("serve")
    if serve is not None:
        # a `repro serve` daemon's row: surface its admission/cache state
        hits, misses = serve.get("cache_hits", 0), serve.get("cache_misses", 0)
        extra.append(
            f"serve q={int(serve.get('queue_depth', 0))}"
            f" inflight={int(serve.get('in_flight', 0))}"
            f" cache={int(hits)}h/{int(misses)}m"
            f" rej={int(serve.get('rejected', 0))}"
        )
    if gmres is not None:
        extra.append(f"gmres iters: {int(gmres)}")
    shm = samples.get(("repro_shm_bytes", ()))
    if shm is not None:
        extra.append(f"shm: {shm / 1e6:.1f} MB")
    when = time.strftime("%H:%M:%S", time.localtime(now_wall))
    title = f"repro top — {when}  ({len(procs)} procs)"
    if extra:
        title += "  [" + ", ".join(extra) + "]"
    return "\n".join([title, ""] + rows)


def run_top(
    url: str,
    interval: float = 1.0,
    iterations: int | None = None,
    plain: bool = False,
    out=None,
    stop_when_down: bool = True,
) -> int:
    """Scrape-and-render loop; returns an exit code."""
    out = sys.stdout if out is None else out
    prev: dict | None = None
    t_prev = time.monotonic()
    misses = 0
    i = 0
    while iterations is None or i < iterations:
        i += 1
        try:
            samples = fetch_metrics(url)
            misses = 0
        except OSError:
            misses += 1
            if misses >= 3 and stop_when_down:
                print(f"endpoint {url} is gone; exiting", file=out)
                return 0 if prev is not None else 1
            time.sleep(interval)
            continue
        now = time.monotonic()
        frame = render_table(samples, prev, now - t_prev, time.time())
        if not plain:
            out.write("\x1b[2J\x1b[H")  # clear + home
        out.write(frame + "\n")
        out.flush()
        prev, t_prev = samples, now
        if iterations is None or i < iterations:
            time.sleep(interval)
    return 0
