"""Live telemetry plane: shared-memory rings, health, flight recorder.

Cross-process observability for the fleet backends and the distributed
runtime.  Producers (forked edge/sparse workers, ranks, the solver loop)
write seqlock-guarded metric slots and bounded event rings
(:mod:`.ring`) into arrays allocated by a :class:`~.plane.TelemetryPlane`
— shared-memory-backed for forked processes, plain numpy in-process.  The
parent side polls registered planes with a
:class:`~.plane.TelemetryAggregator`, watches them with the
:class:`~.health.HealthMonitor`, serves them as Prometheus text
(:mod:`.exporters`), renders them with ``repro top`` (:mod:`.top`), and
dumps them on crashes via the flight recorder (:mod:`.recorder`).
"""

from .exporters import (
    MetricsServer,
    otlp_trace,
    prometheus_text,
    write_otlp_trace,
    write_prometheus,
)
from .fingerprint import host_fingerprint
from .health import HealthEvent, HealthMonitor
from .plane import (
    DEFAULT_EVENTS,
    TelemetryAggregator,
    TelemetryPlane,
    get_live_writer,
    live_planes,
    register_plane,
    unregister_plane,
    use_live_writer,
)
from .recorder import (
    FLIGHTREC_SCHEMA,
    FlightRecorder,
    crash_dump,
    get_flight_recorder,
    install_flight_recorder,
    install_signal_dump,
)
from .ring import (
    STATE_BUSY,
    STATE_IDLE,
    STATE_INIT,
    STATE_SPIN,
    ProcSnapshot,
    RingEvent,
    TelemetryReader,
    TelemetryWriter,
)

__all__ = [
    "DEFAULT_EVENTS",
    "FLIGHTREC_SCHEMA",
    "FlightRecorder",
    "HealthEvent",
    "HealthMonitor",
    "MetricsServer",
    "ProcSnapshot",
    "RingEvent",
    "STATE_BUSY",
    "STATE_IDLE",
    "STATE_INIT",
    "STATE_SPIN",
    "TelemetryAggregator",
    "TelemetryPlane",
    "TelemetryReader",
    "TelemetryWriter",
    "crash_dump",
    "get_flight_recorder",
    "get_live_writer",
    "host_fingerprint",
    "install_flight_recorder",
    "install_signal_dump",
    "live_planes",
    "otlp_trace",
    "prometheus_text",
    "register_plane",
    "unregister_plane",
    "use_live_writer",
    "write_otlp_trace",
    "write_prometheus",
]
