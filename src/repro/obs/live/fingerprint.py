"""Host fingerprint stamped into bench records and flight bundles.

Trend gates compare wall times across runs; a fingerprint (cpu count,
platform, interpreter/library versions, git revision) lets readers discount
deltas that coincide with a host or toolchain change.
"""

from __future__ import annotations

import os
import platform
import subprocess
import sys

__all__ = ["host_fingerprint"]

_cached: dict | None = None


def _git_rev() -> str | None:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=os.path.dirname(os.path.abspath(__file__)),
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    return out.stdout.strip() or None if out.returncode == 0 else None


def host_fingerprint() -> dict:
    """Cheap, cached description of the machine and toolchain."""
    global _cached
    if _cached is None:
        import numpy

        try:
            import scipy

            scipy_version = scipy.__version__
        except ImportError:  # pragma: no cover - scipy is baked in
            scipy_version = None
        _cached = {
            "cpu_count": os.cpu_count(),
            "platform": platform.platform(),
            "machine": platform.machine(),
            "python": sys.version.split()[0],
            "numpy": numpy.__version__,
            "scipy": scipy_version,
            "git_rev": _git_rev(),
        }
    return dict(_cached)
