"""Host fingerprint stamped into bench records and flight bundles.

Trend gates compare wall times across runs; a fingerprint (cpu count,
platform, interpreter/library versions, git revision) lets readers discount
deltas that coincide with a host or toolchain change.
"""

from __future__ import annotations

import os
import platform
import subprocess
import sys

__all__ = ["host_fingerprint", "stable_host_key", "same_host"]

_cached: dict | None = None

#: fingerprint fields that identify *hardware + numerics stack*.
#: Deliberately excludes ``git_rev`` (changes per commit) and the full
#: ``platform`` string (kernel patch level churns on CI runners) —
#: calibration files and history-gate comparisons stay valid across
#: commits on the same box but never cross machines.
STABLE_KEYS = ("cpu_count", "machine", "python", "numpy")


def stable_host_key(fp: dict | None = None) -> dict:
    """The fingerprint subset performance comparisons are valid across."""
    fp = fp if fp is not None else host_fingerprint()
    return {k: fp.get(k) for k in STABLE_KEYS}


def same_host(a: dict | None, b: dict | None = None) -> bool:
    """Do two fingerprints describe the same hardware + stack?

    Records with no fingerprint are never comparable (``False``), so
    pre-fingerprint history degrades to the fixed gates rather than
    polluting a rolling median with another machine's walls.
    """
    if not a:
        return False
    return stable_host_key(a) == stable_host_key(
        b if b is not None else host_fingerprint()
    )


def _git_rev() -> str | None:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=os.path.dirname(os.path.abspath(__file__)),
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    return out.stdout.strip() or None if out.returncode == 0 else None


def host_fingerprint() -> dict:
    """Cheap, cached description of the machine and toolchain."""
    global _cached
    if _cached is None:
        import numpy

        try:
            import scipy

            scipy_version = scipy.__version__
        except ImportError:  # pragma: no cover - scipy is baked in
            scipy_version = None
        _cached = {
            "cpu_count": os.cpu_count(),
            "platform": platform.platform(),
            "machine": platform.machine(),
            "python": sys.version.split()[0],
            "numpy": numpy.__version__,
            "scipy": scipy_version,
            "git_rev": _git_rev(),
        }
    return dict(_cached)
