"""Fleet health monitor over telemetry-plane snapshots.

Three structured conditions, all derived from the per-process rings:

* **stalled** — a process that said hello, is busy or spinning, and whose
  heartbeat has not advanced for ``stall_after`` seconds.  Spin-wait loops
  heartbeat periodically (see ``repro.sparse.p2p.wait_generation``), so a
  *hung* spin still trips this while a healthy one does not.
* **divergence** — a ``residual`` slot that goes non-finite or grows by
  ``divergence_factor`` over the best residual seen so far.
* **excessive_spin** — P2P synchronization overhead: cumulative
  ``spin_seconds`` exceeding ``spin_fraction_max`` of ``busy_seconds``
  (the paper's lock-vs-P2P sync-overhead axis, live instead of post hoc).

Conditions are edge-triggered: one event when a process enters the bad
state, another only after it recovers and re-enters.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field

from .ring import STATE_BUSY, STATE_SPIN, ProcSnapshot

__all__ = ["HealthEvent", "HealthMonitor"]


@dataclass
class HealthEvent:
    """One structured health finding."""

    kind: str  # stalled | divergence | excessive_spin
    proc: str
    ts: float
    detail: dict = field(default_factory=dict)


class HealthMonitor:
    def __init__(
        self,
        stall_after: float = 5.0,
        spin_fraction_max: float = 0.8,
        min_busy_seconds: float = 0.25,
        divergence_factor: float = 1e3,
    ) -> None:
        self.stall_after = float(stall_after)
        self.spin_fraction_max = float(spin_fraction_max)
        self.min_busy_seconds = float(min_busy_seconds)
        self.divergence_factor = float(divergence_factor)
        self._active: set[tuple[str, str]] = set()  # (proc, kind) in effect
        self._best_residual: dict[str, float] = {}

    # ------------------------------------------------------------------
    def _edge(self, proc: str, kind: str, firing: bool) -> bool:
        """True exactly when (proc, kind) transitions into ``firing``."""
        key = (proc, kind)
        if firing and key not in self._active:
            self._active.add(key)
            return True
        if not firing:
            self._active.discard(key)
        return False

    def check(
        self, snaps: dict[str, ProcSnapshot], now: float | None = None
    ) -> list[HealthEvent]:
        now = time.monotonic() if now is None else now
        events: list[HealthEvent] = []
        for name, s in snaps.items():
            if s.pid == 0:  # never started
                continue

            age = s.heartbeat_age(now)
            stalled = (
                s.state in (STATE_BUSY, STATE_SPIN) and age > self.stall_after
            )
            if self._edge(name, "stalled", stalled):
                events.append(
                    HealthEvent(
                        "stalled", name, now,
                        {"heartbeat_age": age, "state": s.state_name,
                         "pid": s.pid},
                    )
                )

            busy = s.slots.get("busy_seconds", 0.0)
            spin = s.slots.get("spin_seconds", 0.0)
            frac = spin / busy if busy > self.min_busy_seconds else 0.0
            if self._edge(name, "excessive_spin", frac > self.spin_fraction_max):
                events.append(
                    HealthEvent(
                        "excessive_spin", name, now,
                        {"spin_fraction": frac, "spin_seconds": spin,
                         "busy_seconds": busy},
                    )
                )

            if "residual" in s.slots:
                r = s.slots["residual"]
                if r > 0.0 and math.isfinite(r):
                    best = self._best_residual.get(name)
                    if best is None or r < best:
                        self._best_residual[name] = best = r
                    diverging = r > self.divergence_factor * best
                else:
                    diverging = not math.isfinite(r)
                if self._edge(name, "divergence", diverging):
                    events.append(
                        HealthEvent(
                            "divergence", name, now,
                            {"residual": r,
                             "best": self._best_residual.get(name)},
                        )
                    )
        return events
