"""Flight recorder: rolling event buffer dumped as a JSONL bundle.

Each process keeps a bounded deque of recent records (health findings,
plane events, solver milestones).  On worker crash / SIGKILL-detected fleet
death, unhandled exception, or SIGUSR1, :func:`crash_dump` writes a
timestamped JSONL bundle — header with reason/host/dead-process list, then
live-plane snapshots, drained ring events, the rolling records, recent
tracer events and a metrics snapshot — so the last seconds before a death
are inspectable even though the run never reached its exporters.

Dumping is opt-in per process: nothing is written unless a recorder has
been installed (the CLI installs one for ``solve``/``profile``; tests
install into a tmpdir).  Fleet backends call :func:`crash_dump` from their
dead-worker branches; forked ranks inherit the parent's installed recorder,
so a sparse-worker death inside a rank dumps from the rank process.
"""

from __future__ import annotations

import datetime
import json
import os
import signal
import sys
import time
from collections import deque

from ..export import _clean
from .fingerprint import host_fingerprint

__all__ = [
    "FLIGHTREC_SCHEMA",
    "FlightRecorder",
    "install_flight_recorder",
    "get_flight_recorder",
    "crash_dump",
    "install_signal_dump",
    "reap_dead",
]

FLIGHTREC_SCHEMA = "repro.obs.flightrec/v1"

#: Environment override for the bundle directory (inherited by forks).
ENV_DIR = "REPRO_FLIGHTREC_DIR"


class FlightRecorder:
    def __init__(self, capacity: int = 4096, out_dir: str | None = None) -> None:
        self.capacity = int(capacity)
        self.out_dir = out_dir
        self._records: deque[dict] = deque(maxlen=self.capacity)

    # ------------------------------------------------------------------
    def record(self, kind: str, **fields) -> None:
        rec = {"type": kind, "ts": time.time()}
        rec.update(_clean(fields))
        self._records.append(rec)

    def records(self) -> list[dict]:
        return list(self._records)

    # ------------------------------------------------------------------
    def _resolve_dir(self) -> str:
        out = (
            self.out_dir
            or os.environ.get(ENV_DIR)
            or os.path.join(os.getcwd(), ".flightrec")
        )
        os.makedirs(out, exist_ok=True)
        return out

    def dump(
        self,
        reason: str,
        dead: tuple[str, ...] = (),
        extra: dict | None = None,
        path: str | None = None,
    ) -> str:
        """Write the bundle; returns its path."""
        if path is None:
            stamp = datetime.datetime.now().strftime("%Y%m%d-%H%M%S")
            path = os.path.join(
                self._resolve_dir(),
                f"flightrec-{stamp}-pid{os.getpid()}.jsonl",
            )
        lines: list[dict] = [
            {
                "type": "flightrec_header",
                "schema": FLIGHTREC_SCHEMA,
                "reason": reason,
                "time": time.time(),
                "pid": os.getpid(),
                "dead": list(dead),
                "host": host_fingerprint(),
                **(_clean(extra) if extra else {}),
            }
        ]
        lines.extend(self._plane_records())
        lines.extend(self._records)
        lines.extend(self._obs_records())
        with open(path, "w", encoding="utf-8") as fh:
            for rec in lines:
                fh.write(json.dumps(rec) + "\n")
        return path

    # ------------------------------------------------------------------
    @staticmethod
    def _plane_records() -> list[dict]:
        from .plane import live_planes

        out: list[dict] = []
        now = time.monotonic()
        for plane in live_planes():
            for name, s in plane.snapshot_all().items():
                out.append(
                    {
                        "type": "proc",
                        "proc": name,
                        "pid": s.pid,
                        "state": s.state_name,
                        "heartbeats": s.hb,
                        "heartbeat_age": s.heartbeat_age(now),
                        "slots": s.slots,
                    }
                )
            for ev in plane.drain_all():
                out.append(
                    {
                        "type": "plane_event",
                        "proc": ev.proc,
                        "name": ev.name,
                        "ts": ev.ts,
                        "a": ev.a,
                        "b": ev.b,
                    }
                )
        return out

    @staticmethod
    def _obs_records(n_events: int = 200) -> list[dict]:
        from ..metrics import get_metrics
        from ..span import get_tracer

        out: list[dict] = []
        tracer = get_tracer()
        if getattr(tracer, "active", False):
            for ev in tracer.events[-n_events:]:
                out.append(
                    {
                        "type": "trace_event",
                        "name": ev.name,
                        "ts": ev.ts,
                        "attrs": _clean(ev.attrs),
                    }
                )
        try:
            out.extend(get_metrics().snapshot())
        except Exception:  # pragma: no cover - metrics must not block a dump
            pass
        return out


# ---------------------------------------------------------------------------
# process-global recorder + crash/signal hooks
# ---------------------------------------------------------------------------
_installed: FlightRecorder | None = None


def install_flight_recorder(
    recorder: FlightRecorder | None = None,
) -> FlightRecorder:
    """Enable crash dumps for this process (and future forks)."""
    global _installed
    _installed = recorder if recorder is not None else FlightRecorder()
    return _installed


def get_flight_recorder() -> FlightRecorder | None:
    return _installed


def crash_dump(
    reason: str, dead: tuple[str, ...] = (), extra: dict | None = None
) -> str | None:
    """Best-effort bundle dump; no-op unless a recorder is installed."""
    rec = _installed
    if rec is None:
        return None
    try:
        path = rec.dump(reason, dead=dead, extra=extra)
    except Exception:  # pragma: no cover - dumping must never mask the error
        return None
    print(f"flight recorder bundle: {path}", file=sys.stderr)
    return path


def reap_dead(procs, timeout: float = 0.5) -> list[str]:
    """Names of processes that are no longer alive, for a crash dump.

    A SIGKILLed child's pipe EOF can reach the parent *before* the child is
    reapable through ``waitpid`` (fd teardown precedes exit notification),
    so a bare ``is_alive()`` sweep right after the EOF may name nobody.
    Poll briefly until at least one corpse shows up or ``timeout`` passes.
    """
    deadline = time.monotonic() + timeout
    while True:
        dead = [p.name for p in procs if not p.is_alive()]
        if dead or time.monotonic() > deadline:
            return dead
        time.sleep(0.01)


def install_signal_dump(signums: tuple[int, ...] = (signal.SIGUSR1,)) -> None:
    """Dump a bundle on demand (default SIGUSR1) without dying."""

    def _handler(signum, frame):  # pragma: no cover - exercised via CI smoke
        crash_dump(f"signal-{signal.Signals(signum).name}")

    for signum in signums:
        signal.signal(signum, _handler)
