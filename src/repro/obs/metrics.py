"""Counters, gauges, and fixed-bucket histograms (the metrics half).

Spans answer "where did the time go"; metrics answer "how did the solve
*behave*" — Krylov iterations per Newton step, residual norms, halo bytes
moved, allreduce counts, redundant-edge fractions.  These are the Table I/II
iteration statistics and the Fig. 10 communication counts of the paper,
collected live from the instrumented layers instead of recomputed after the
fact.

A :class:`MetricsRegistry` is swappable exactly like ``PerfRegistry``
(``use_metrics`` / ``get_metrics``), with a process-global default so
instrumentation never needs a guard.
"""

from __future__ import annotations

import bisect
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Sequence

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_metrics",
    "use_metrics",
]


@dataclass
class Counter:
    """Monotonically increasing count (events, bytes, iterations)."""

    name: str
    value: float = 0.0

    def inc(self, n: float = 1.0) -> None:
        if n < 0:
            raise ValueError(f"counter {self.name}: negative increment {n}")
        self.value += n

    def snapshot(self) -> dict[str, Any]:
        return {"type": "counter", "name": self.name, "value": self.value}


@dataclass
class Gauge:
    """Last-written value (fill ratios, level counts, fractions)."""

    name: str
    value: float = 0.0
    writes: int = 0

    def set(self, v: float) -> None:
        self.value = float(v)
        self.writes += 1

    def snapshot(self) -> dict[str, Any]:
        return {
            "type": "gauge",
            "name": self.name,
            "value": self.value,
            "writes": self.writes,
        }


class Histogram:
    """Fixed-bucket histogram with upper-edge semantics.

    ``edges`` are ascending bucket upper bounds; an observation ``v`` lands
    in the first bucket with ``v <= edge``, or the overflow bucket past the
    last edge — so ``edges=[1, 10]`` yields counts for ``(-inf, 1]``,
    ``(1, 10]``, ``(10, inf)``.
    """

    def __init__(self, name: str, edges: Sequence[float]) -> None:
        if list(edges) != sorted(edges) or len(set(edges)) != len(edges):
            raise ValueError(f"histogram {name}: edges must be ascending")
        self.name = name
        self.edges = [float(e) for e in edges]
        self.counts = [0] * (len(self.edges) + 1)
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, v: float) -> None:
        v = float(v)
        self.counts[bisect.bisect_left(self.edges, v)] += 1
        self.count += 1
        self.sum += v
        self.min = min(self.min, v)
        self.max = max(self.max, v)

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def snapshot(self) -> dict[str, Any]:
        return {
            "type": "histogram",
            "name": self.name,
            "edges": self.edges,
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.sum,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
        }


#: default bucket edges for iteration-count-like histograms
_DEFAULT_EDGES = (1, 2, 5, 10, 20, 50, 100, 200, 500)


@dataclass
class MetricsRegistry:
    """Named metric instruments, created on first use."""

    counters: dict[str, Counter] = field(default_factory=dict)
    gauges: dict[str, Gauge] = field(default_factory=dict)
    histograms: dict[str, Histogram] = field(default_factory=dict)

    def counter(self, name: str) -> Counter:
        if name not in self.counters:
            self.counters[name] = Counter(name)
        return self.counters[name]

    def gauge(self, name: str) -> Gauge:
        if name not in self.gauges:
            self.gauges[name] = Gauge(name)
        return self.gauges[name]

    def histogram(
        self, name: str, edges: Sequence[float] = _DEFAULT_EDGES
    ) -> Histogram:
        if name not in self.histograms:
            self.histograms[name] = Histogram(name, edges)
        return self.histograms[name]

    # ------------------------------------------------------------------
    def snapshot(self) -> list[dict[str, Any]]:
        """All instruments as plain dicts (JSONL export order: c, g, h)."""
        out = [c.snapshot() for _, c in sorted(self.counters.items())]
        out += [g.snapshot() for _, g in sorted(self.gauges.items())]
        out += [h.snapshot() for _, h in sorted(self.histograms.items())]
        return out

    def report(self) -> str:
        """Human-readable metrics summary."""
        lines = []
        if self.counters:
            lines.append(f"{'counter':<36}{'value':>14}")
            for name, c in sorted(self.counters.items()):
                lines.append(f"{name:<36}{c.value:>14g}")
        if self.gauges:
            lines.append(f"{'gauge':<36}{'value':>14}")
            for name, g in sorted(self.gauges.items()):
                lines.append(f"{name:<36}{g.value:>14g}")
        if self.histograms:
            lines.append(
                f"{'histogram':<28}{'count':>8}{'mean':>10}{'min':>8}{'max':>8}"
            )
            for name, h in sorted(self.histograms.items()):
                lo = f"{h.min:g}" if h.count else "-"
                hi = f"{h.max:g}" if h.count else "-"
                lines.append(
                    f"{name:<28}{h.count:>8}{h.mean:>10.3g}{lo:>8}{hi:>8}"
                )
        return "\n".join(lines) if lines else "(no metrics)"

    def clear(self) -> None:
        self.counters.clear()
        self.gauges.clear()
        self.histograms.clear()


_global = MetricsRegistry()
_stack: list[MetricsRegistry] = []


def get_metrics() -> MetricsRegistry:
    """The active metrics registry (innermost ``use_metrics`` or global)."""
    return _stack[-1] if _stack else _global


@contextmanager
def use_metrics(registry: MetricsRegistry):
    """Route all metric emission inside the block to ``registry``."""
    depth = len(_stack)
    _stack.append(registry)
    try:
        yield registry
    finally:
        del _stack[depth:]
