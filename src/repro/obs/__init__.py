"""Observability subsystem: hierarchical tracing, metrics, and exporters.

Three pieces, designed to sit *on top of* the flat kernel accounting in
:mod:`repro.perf` rather than replace it:

* :mod:`~repro.obs.span` — a :class:`Tracer` producing nested span trees
  (``solve → newton-step → gmres → trsv``) with wall/model seconds and
  flop/byte attributes; :func:`kernel_span` reports one timed interval to
  both the span tree and the active ``PerfRegistry`` so the two views
  reconcile exactly.
* :mod:`~repro.obs.metrics` — counters, gauges, and fixed-bucket
  histograms for solver behavior (Krylov iterations per Newton step,
  residual norms, halo bytes, allreduce counts).
* :mod:`~repro.obs.export` — Chrome ``trace_event`` JSON (open in
  ``chrome://tracing`` / Perfetto) and a lossless JSONL event log.
* :mod:`~repro.obs.live` — the cross-process telemetry plane: seqlock
  metric rings in shared memory written by live workers/ranks, the
  health monitor, the flight recorder, Prometheus/OTLP exporters, and
  the ``repro top`` view.

Typical use::

    from repro.obs import Tracer, MetricsRegistry, use_tracer, use_metrics

    tracer, metrics = Tracer(), MetricsRegistry()
    with use_tracer(tracer), use_metrics(metrics):
        app.run(...)
    print(tracer.kernel_totals())          # {"flux": ..., "trsv": ...}
    write_chrome_trace(tracer, "t.json")   # -> chrome://tracing
"""

from .export import (
    chrome_trace,
    jsonl_records,
    read_jsonl,
    write_chrome_trace,
    write_jsonl,
)
from .live import (
    FlightRecorder,
    HealthMonitor,
    MetricsServer,
    TelemetryAggregator,
    TelemetryPlane,
    get_live_writer,
    host_fingerprint,
    install_flight_recorder,
    live_planes,
    prometheus_text,
    use_live_writer,
)
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_metrics,
    use_metrics,
)
from .span import (
    NullTracer,
    aggregate_spans,
    Span,
    TraceEvent,
    Tracer,
    get_tracer,
    kernel_span,
    synthetic_span,
    use_tracer,
)

__all__ = [
    "Span",
    "TraceEvent",
    "Tracer",
    "NullTracer",
    "get_tracer",
    "use_tracer",
    "kernel_span",
    "aggregate_spans",
    "synthetic_span",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_metrics",
    "use_metrics",
    "chrome_trace",
    "write_chrome_trace",
    "jsonl_records",
    "write_jsonl",
    "read_jsonl",
    "FlightRecorder",
    "HealthMonitor",
    "MetricsServer",
    "TelemetryAggregator",
    "TelemetryPlane",
    "get_live_writer",
    "host_fingerprint",
    "install_flight_recorder",
    "live_planes",
    "prometheus_text",
    "use_live_writer",
]
