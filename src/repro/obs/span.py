"""Hierarchical spans: the tracing half of the observability layer.

The flat :class:`~repro.perf.PerfRegistry` answers "how much time went into
kernel X overall"; a span tree answers "where inside the solve did that time
go" — the difference between Fig. 5's per-kernel pie and an execution
profile that attributes TRSV seconds to the GMRES iteration of the Newton
step that ran them.  A :class:`Tracer` keeps an explicit stack of open
spans; ``tracer.span("newton-step")`` nests under whatever is open, and the
finished tree exports to Chrome ``trace_event`` JSON, JSONL, or the
plain-text profile report in :mod:`repro.perf.report`.

Kernel-level instrumentation goes through :func:`kernel_span`, which takes
ONE clock reading and reports it to both the active registry and the active
tracer — so the span tree and the registry reconcile exactly, and code
instrumented this way keeps feeding ``PerfRegistry`` consumers unchanged
when no tracer is installed (the default :class:`NullTracer` is a no-op).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

from ..perf.profile import get_registry

__all__ = [
    "Span",
    "TraceEvent",
    "Tracer",
    "NullTracer",
    "get_tracer",
    "use_tracer",
    "kernel_span",
    "aggregate_spans",
    "synthetic_span",
]


@dataclass
class Span:
    """One timed region; children are the regions opened inside it."""

    name: str
    t0: float = 0.0
    t1: float | None = None
    model_seconds: float = 0.0
    flops: float = 0.0
    bytes: float = 0.0
    attrs: dict[str, Any] = field(default_factory=dict)
    children: list["Span"] = field(default_factory=list)

    @property
    def seconds(self) -> float:
        """Wall-clock duration (0 while still open)."""
        return (self.t1 - self.t0) if self.t1 is not None else 0.0

    @property
    def self_seconds(self) -> float:
        """Duration not covered by child spans."""
        return max(0.0, self.seconds - sum(c.seconds for c in self.children))

    def walk(self) -> Iterator["Span"]:
        """Depth-first pre-order over this span and its descendants."""
        yield self
        for c in self.children:
            yield from c.walk()

    def find(self, name: str) -> Iterator["Span"]:
        return (s for s in self.walk() if s.name == name)


@dataclass
class TraceEvent:
    """An instant event (a point in time, not a region): ph ``i`` in Chrome."""

    name: str
    ts: float
    attrs: dict[str, Any] = field(default_factory=dict)


class Tracer:
    """Collects a span forest plus instant events.

    ``clock`` is injectable so tests get deterministic timestamps;
    production uses ``time.perf_counter``.
    """

    active = True

    def __init__(self, clock: Callable[[], float] = time.perf_counter) -> None:
        self.clock = clock
        self.roots: list[Span] = []
        self.events: list[TraceEvent] = []
        self._open: list[Span] = []

    # ------------------------------------------------------------------
    @contextmanager
    def span(
        self,
        name: str,
        *,
        model_seconds: float = 0.0,
        flops: float = 0.0,
        nbytes: float = 0.0,
        **attrs: Any,
    ):
        """Open a nested span for the duration of the ``with`` block."""
        s = Span(
            name,
            t0=self.clock(),
            model_seconds=model_seconds,
            flops=flops,
            bytes=nbytes,
            attrs=dict(attrs),
        )
        parent = self._open[-1] if self._open else None
        (parent.children if parent else self.roots).append(s)
        self._open.append(s)
        try:
            yield s
        finally:
            s.t1 = self.clock()
            self._open.pop()

    def add_complete(
        self,
        name: str,
        t0: float,
        t1: float,
        *,
        model_seconds: float = 0.0,
        flops: float = 0.0,
        nbytes: float = 0.0,
        **attrs: Any,
    ) -> Span:
        """Attach an externally-timed span under the currently open one."""
        s = Span(
            name,
            t0=t0,
            t1=t1,
            model_seconds=model_seconds,
            flops=flops,
            bytes=nbytes,
            attrs=dict(attrs),
        )
        parent = self._open[-1] if self._open else None
        (parent.children if parent else self.roots).append(s)
        return s

    def event(self, name: str, **attrs: Any) -> None:
        """Record an instant event (convergence telemetry, milestones)."""
        self.events.append(TraceEvent(name, ts=self.clock(), attrs=dict(attrs)))

    # ------------------------------------------------------------------
    def total_seconds(self) -> float:
        """Sum of root-level span durations."""
        return sum(s.seconds for s in self.roots)

    def walk(self) -> Iterator[Span]:
        for r in self.roots:
            yield from r.walk()

    def find(self, name: str) -> Iterator[Span]:
        return (s for s in self.walk() if s.name == name)

    def kernel_totals(self, *, model: bool = False) -> dict[str, float]:
        """Per-name summed seconds over the whole forest.

        This is the span-tree analogue of ``PerfRegistry.total_seconds``
        per kernel; for code instrumented with :func:`kernel_span` the two
        agree exactly.
        """
        out: dict[str, float] = {}
        for s in self.walk():
            secs = s.model_seconds if model else s.seconds
            out[s.name] = out.get(s.name, 0.0) + secs
        return out

    def kernel_counts(self) -> dict[str, int]:
        """Per-name span counts (invocation counts for kernel spans)."""
        out: dict[str, int] = {}
        for s in self.walk():
            out[s.name] = out.get(s.name, 0) + 1
        return out


class NullTracer:
    """Inactive tracer: every operation is a cheap no-op.

    Installed by default so instrumented code pays almost nothing when
    nobody asked for a trace.
    """

    active = False
    roots: tuple = ()
    events: tuple = ()

    @contextmanager
    def span(self, name: str, **kw: Any):
        yield None

    def add_complete(self, name: str, t0: float, t1: float, **kw: Any) -> None:
        return None

    def event(self, name: str, **attrs: Any) -> None:
        return None

    def total_seconds(self) -> float:
        return 0.0

    def walk(self) -> Iterator[Span]:
        return iter(())

    def find(self, name: str) -> Iterator[Span]:
        return iter(())

    def kernel_totals(self, *, model: bool = False) -> dict[str, float]:
        return {}

    def kernel_counts(self) -> dict[str, int]:
        return {}


_null = NullTracer()
_stack: list[Tracer] = []


def get_tracer() -> Tracer | NullTracer:
    """The currently active tracer (innermost ``use_tracer``, else a no-op)."""
    return _stack[-1] if _stack else _null


@contextmanager
def use_tracer(tracer: Tracer):
    """Route all span/event emission inside the block to ``tracer``."""
    depth = len(_stack)
    _stack.append(tracer)
    try:
        yield tracer
    finally:
        # truncate instead of pop: restores the outer tracer even if inner
        # code leaked pushes (same reentrancy contract as use_registry)
        del _stack[depth:]


@contextmanager
def kernel_span(name: str, *, flops: float = 0.0, nbytes: float = 0.0, **attrs: Any):
    """Time a kernel once; report to BOTH the registry and the tracer.

    Drop-in replacement for ``get_registry().timer(name)`` at kernel call
    sites: the registry sees exactly the same ``add(name, seconds=...)`` it
    always did, and when a tracer is active the same interval lands in the
    span tree — one ``perf_counter`` pair, so the two views reconcile
    exactly.
    """
    tracer = get_tracer()
    t0 = time.perf_counter()
    try:
        yield
    finally:
        t1 = time.perf_counter()
        get_registry().add(name, seconds=t1 - t0, flops=flops, nbytes=nbytes)
        if tracer.active:
            tracer.add_complete(
                name, t0, t1, flops=flops, nbytes=nbytes, **attrs
            )


def aggregate_spans(roots: list[Span] | tuple) -> list[Span]:
    """Merge same-name siblings recursively (the flame-graph fold).

    149 individual ``flux`` spans under ``gmres`` become one ``flux`` node
    with summed seconds and a ``count`` attribute; structure across levels
    is preserved.  Returns new spans (``t0=0``), inputs untouched.
    """

    def merge(spans: list[Span]) -> list[Span]:
        by_name: dict[str, tuple[Span, list[Span]]] = {}
        order: list[str] = []
        for s in spans:
            if s.name not in by_name:
                agg = Span(s.name, t0=0.0, t1=0.0, attrs={"count": 0})
                by_name[s.name] = (agg, [])
                order.append(s.name)
            agg, kids = by_name[s.name]
            agg.t1 += s.seconds
            agg.model_seconds += s.model_seconds
            agg.flops += s.flops
            agg.bytes += s.bytes
            agg.attrs["count"] += 1
            kids.extend(s.children)
        out = []
        for name in order:
            agg, kids = by_name[name]
            agg.children = merge(kids)
            out.append(agg)
        return out

    return merge(list(roots))


def synthetic_span(
    name: str,
    seconds: float,
    *,
    t0: float = 0.0,
    children: list[Span] | None = None,
    **attrs: Any,
) -> Span:
    """Build a span from *modeled* seconds (no wall clock involved).

    Children are laid out back-to-back starting at ``t0`` so the result
    renders sensibly in Chrome tracing; ``model_seconds`` carries the same
    duration for the model/measured distinction.
    """
    s = Span(
        name,
        t0=t0,
        t1=t0 + seconds,
        model_seconds=seconds,
        attrs=dict(attrs),
    )
    t = t0
    for c in children or []:
        shift = t - c.t0
        for sub in c.walk():
            sub.t0 += shift
            if sub.t1 is not None:
                sub.t1 += shift
        t = c.t1 if c.t1 is not None else t
        s.children.append(c)
    return s
