"""Distributed-memory simulation: halo exchange, network model, scaling model."""

from .halo import DomainDecomposition, LocalDomain
from .multinode import (
    MESH_C_PAPER,
    MESH_D_PAPER,
    MultiNodeModel,
    NodeConfig,
    WorkloadSpec,
)
from .network import STAMPEDE_FDR, FatTreeNetwork

__all__ = [
    "DomainDecomposition",
    "LocalDomain",
    "MESH_C_PAPER",
    "MESH_D_PAPER",
    "MultiNodeModel",
    "NodeConfig",
    "WorkloadSpec",
    "STAMPEDE_FDR",
    "FatTreeNetwork",
]
