"""Process-rank runtime: fork one worker per subdomain, run, join.

:class:`DistRuntime` is the process-management half of the distributed
runtime (the message layer lives in :mod:`.comm`).  It forks one worker
per :class:`~repro.dist.halo.DomainDecomposition` rank; each worker builds
its :class:`~.comm.Communicator` endpoint, runs the caller's *rank
program* (any callable ``program(comm) -> value``), and ships back its
return value, recorded spans, and measured communication totals over a
duplex pipe.  The parent supervises the fleet the same way
``ProcessEdgeBackend`` does: sub-second liveness polls so a dead rank
surfaces as a ``RuntimeError`` instead of a hang, terminate-then-kill
teardown, and a single :class:`~repro.smp.shm.SharedArrayPool` cleanup
path so no ``/dev/shm`` segment survives the run — even a crashed one.
"""

from __future__ import annotations

import atexit
import multiprocessing as mp
import multiprocessing.connection as mp_conn
import os
import time
import traceback
from dataclasses import dataclass, field as dc_field
from typing import Any, Callable, Sequence

from ...obs.live.recorder import crash_dump, reap_dead
from .comm import Communicator, ShmTransport

__all__ = ["DistRuntime", "RankResult"]


@dataclass
class RankResult:
    """What one rank sends home: its program's return value, the spans it
    recorded (``rank<i>.halo`` / ``.interior`` / ``.allreduce``), and its
    measured communication totals."""

    rank: int
    value: Any
    spans: list[tuple[str, float, float, dict[str, Any]]] = dc_field(
        default_factory=list
    )
    comm_stats: dict[str, float] = dc_field(default_factory=dict)


def _rank_main(
    transport: ShmTransport,
    rank: int,
    program: Callable[[Communicator], Any],
    algo: str,
    conn,
) -> None:
    """Worker entry point (runs in the forked child)."""
    comm = None
    try:
        comm = Communicator(transport, rank, algo=algo)
        value = program(comm)
        conn.send((rank, value, comm.recorder.spans, comm.stats(), None))
    except BaseException as exc:
        err = f"{type(exc).__name__}: {exc}\n{traceback.format_exc()}"
        try:
            conn.send((rank, None, [], {}, err))
        except Exception:
            pass
    finally:
        if comm is not None:
            try:
                comm.close()
            except Exception:
                pass


class DistRuntime:
    """Forked-rank executor over a domain decomposition.

    Parameters
    ----------
    decomp:
        the :class:`~repro.dist.halo.DomainDecomposition` whose subdomains
        become ranks (one process each).
    halo_width:
        doubles per vertex a halo message can carry (16 covers the
        gradient+limiter exchange, the widest in the solver).
    allreduce_algo:
        ``flat`` (slot array + two barriers) or ``tree`` (binomial).
    timeout:
        seconds to wait for rank results / blocked communication before
        declaring the run dead.
    """

    def __init__(
        self,
        decomp,
        halo_width: int = 16,
        red_width: int = 64,
        allreduce_algo: str = "flat",
        timeout: float = 300.0,
        telemetry: bool = True,
        rank_slots: Sequence[str] | None = None,
    ) -> None:
        if "fork" not in mp.get_all_start_methods():
            raise RuntimeError(
                "DistRuntime needs the 'fork' start method (POSIX only)"
            )
        if allreduce_algo not in ("flat", "tree"):
            raise ValueError(f"unknown allreduce algorithm {allreduce_algo!r}")
        self.decomp = decomp
        self.n_ranks = decomp.n_ranks
        self.allreduce_algo = allreduce_algo
        self.timeout = float(timeout)
        self._ctx = mp.get_context("fork")
        self.transport = ShmTransport(
            decomp,
            self._ctx,
            halo_width=halo_width,
            red_width=red_width,
            timeout=timeout,
            telemetry=telemetry,
            rank_slots=rank_slots,
        )
        self._owner_pid = os.getpid()
        self._closed = False
        self._procs: list = []
        self._conns: list = []
        atexit.register(self.close)

    # ------------------------------------------------------------------
    def run(self, program: Callable[[Communicator], Any]) -> list[RankResult]:
        """Fork one process per rank, run ``program(comm)`` in each, and
        return the per-rank results (index == rank).

        ``program`` is inherited through ``fork`` (plain closures over
        NumPy arrays work; nothing is pickled on the way in).  If any rank
        dies or raises, every sibling is torn down and a ``RuntimeError``
        carrying the first failure propagates.
        """
        if self._closed:
            raise RuntimeError("runtime is closed")
        if self._procs:
            raise RuntimeError("runtime already has ranks in flight")
        for r in range(self.n_ranks):
            parent_conn, child_conn = self._ctx.Pipe(duplex=False)
            # not daemonic: a rank program may fork its own worker fleet
            # (per-rank SparseProcessBackend); daemonic processes cannot
            # have children.  Cleanup is unaffected — _terminate/_join and
            # the atexit close() path reap the ranks either way.
            p = self._ctx.Process(
                target=_rank_main,
                args=(self.transport, r, program, self.allreduce_algo, child_conn),
                daemon=False,
                name=f"repro-rank{r}",
            )
            p.start()
            child_conn.close()
            self._conns.append(parent_conn)
            self._procs.append(p)
        try:
            results = self._collect()
        except BaseException:
            self._terminate()
            raise
        self._join()
        return results

    def _collect(self) -> list[RankResult]:
        pending = dict(enumerate(self._conns))
        out: dict[int, RankResult] = {}
        deadline = time.monotonic() + self.timeout
        while pending:
            ready = mp_conn.wait(list(pending.values()), timeout=0.2)
            if not ready:
                dead = [
                    self._procs[r].name
                    for r in pending
                    if not self._procs[r].is_alive()
                ]
                if dead:
                    crash_dump("rank-death", dead=tuple(dead))
                    raise RuntimeError(
                        f"rank process(es) died before reporting: {dead}"
                    )
                if time.monotonic() > deadline:
                    crash_dump("rank-timeout")
                    raise RuntimeError(
                        f"timed out after {self.timeout}s waiting for ranks "
                        f"{sorted(pending)}"
                    )
                continue
            for conn in ready:
                try:
                    rank, value, spans, stats, err = conn.recv()
                except EOFError:
                    dead = reap_dead(self._procs)
                    crash_dump(
                        "rank-death (pipe closed)", dead=tuple(dead)
                    )
                    raise RuntimeError(
                        "rank process died mid-run (pipe closed)"
                    ) from None
                if err is not None:
                    raise RuntimeError(f"rank {rank} failed: {err}")
                out[rank] = RankResult(rank, value, spans, stats)
                del pending[rank]
        return [out[r] for r in range(self.n_ranks)]

    def _join(self) -> None:
        for p in self._procs:
            p.join(timeout=5.0)
            if p.is_alive():
                p.terminate()
                p.join(timeout=2.0)
        for conn in self._conns:
            try:
                conn.close()
            except Exception:
                pass
        self._procs, self._conns = [], []

    def _terminate(self) -> None:
        for p in self._procs:
            if p.is_alive():
                p.terminate()
        for p in self._procs:
            p.join(timeout=2.0)
            if p.is_alive():
                p.kill()
                p.join(timeout=1.0)
        for conn in self._conns:
            try:
                conn.close()
            except Exception:
                pass
        self._procs, self._conns = [], []

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Tear down ranks (if any) and unlink every shared segment."""
        if self._closed or os.getpid() != self._owner_pid:
            return
        self._closed = True
        self._terminate()
        self.transport.close()
        try:
            atexit.unregister(self.close)
        except Exception:
            pass

    def __enter__(self) -> "DistRuntime":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    def __del__(self) -> None:
        try:
            self.close()
        except Exception:
            pass
