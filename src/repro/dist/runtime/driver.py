"""Top-level entry point: run a distributed steady solve on N ranks.

:func:`distributed_solve` partitions the mesh, forks one rank process per
subdomain through :class:`~.runtime.DistRuntime`, runs the replicated
Newton program of :mod:`.program`, gathers the owned slices back into a
global state, and folds every rank's recorded spans into the active
observability trace as a ``dist-solve`` subtree::

    dist-solve
      rank0
        rank0.halo  rank0.interior  rank0.allreduce  ...
      rank1
        ...

so ``repro profile --dist-ranks N`` shows the *measured* comm/compute
breakdown next to the Fig 9-11 cost model's.  Measured totals also feed
the metrics registry: ``gmres.allreduces`` counts real reductions, and
``dist.halo_seconds`` / ``dist.allreduce_seconds`` / ``dist.interior_seconds``
carry the critical-path (max-over-ranks) wall times.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field

import numpy as np

from ...cfd.state import FlowConfig, FlowField
from ...obs.metrics import get_metrics
from ...obs.span import Span, get_tracer
from ...solver.newton import SolveResult, SolverOptions
from ..halo import DomainDecomposition
from .comm import RANK_SLOTS
from .program import GRAD_LIMITER_WIDTH, build_rank_data, rank_solve_steady
from .runtime import DistRuntime

__all__ = ["DistSolveResult", "distributed_solve"]


@dataclass
class DistSolveResult:
    """A distributed solve's outcome plus its measured communication story."""

    result: SolveResult
    n_ranks: int
    pipelined: bool
    labels: np.ndarray
    #: per-rank measured totals: halo/allreduce seconds and counts,
    #: interior-compute seconds, end-to-end elapsed
    rank_stats: list[dict] = dc_field(default_factory=list)

    def comm_breakdown(self) -> dict[str, float]:
        """Critical-path (max over ranks) comm/compute decomposition —
        the measured counterpart of the Fig 10 model's halo vs. allreduce
        shares."""
        halo = max(s["halo_seconds"] for s in self.rank_stats)
        allred = max(s["allreduce_seconds"] for s in self.rank_stats)
        interior = max(s["interior_seconds"] for s in self.rank_stats)
        elapsed = max(s["elapsed"] for s in self.rank_stats)
        elapsed = max(elapsed, 1e-30)
        return {
            "halo_seconds": halo,
            "allreduce_seconds": allred,
            "interior_seconds": interior,
            "elapsed_seconds": elapsed,
            "halo_fraction": halo / elapsed,
            "allreduce_fraction": allred / elapsed,
            "comm_fraction": (halo + allred) / elapsed,
        }


def _red_width_for(opts: SolverOptions) -> int:
    """Reduction-scratch width sized to the GMRES restart.

    Classical Gram-Schmidt batches one allreduce of width ``j + 1`` per
    inner iteration (``j < restart``), so restarts above the old fixed
    scratch of 64 slots hit the red-slot ceiling; size the scratch to the
    restart (plus slack for the norm fusions) and never below the
    historical default.
    """
    return max(64, int(opts.gmres_restart) + 2)


def distributed_solve(
    field: FlowField,
    config: FlowConfig,
    opts: SolverOptions | None = None,
    n_ranks: int = 2,
    pipelined: bool = False,
    labels: np.ndarray | None = None,
    q0: np.ndarray | None = None,
    seed: int = 0,
    allreduce_algo: str = "flat",
    timeout: float = 300.0,
    telemetry: bool = True,
    decomp: DomainDecomposition | None = None,
    fuse: bool = False,
) -> DistSolveResult:
    """Steady solve on ``n_ranks`` forked rank processes.

    The converged state matches :func:`repro.solver.newton.solve_steady`'s
    to the outer tolerance (the Newton fixed point does not depend on the
    decomposition; only summation order differs along the way).  Spans and
    measured communication land in the active tracer/metrics.

    ``decomp`` short-circuits the partition + decomposition build with a
    prebuilt :class:`DomainDecomposition` over the same mesh — the serve
    daemon's warm cache passes one so repeated distributed requests on a
    mesh family pay the multilevel partition exactly once.

    ``fuse=True`` runs each rank's residual through the fused
    kernel-graph pipeline (see :func:`..program.rank_residual`) —
    bitwise-identical residuals, fewer edge passes, with per-stage
    ``fuse.*`` spans in the rank trace.
    """
    opts = opts or SolverOptions()
    nv = field.n_vertices
    if decomp is None:
        if labels is None:
            if n_ranks > 1:
                from ...partition.multilevel import partition_graph

                labels = partition_graph(
                    field.mesh.edges, nv, n_ranks, seed=seed
                )
            else:
                labels = np.zeros(nv, dtype=np.int64)
        labels = np.asarray(labels)
        decomp = DomainDecomposition(field.mesh.edges, labels)
    datas = build_rank_data(field, config, decomp, q0=q0)

    def program(comm):
        return rank_solve_steady(
            datas[comm.rank], comm, config, opts,
            pipelined=pipelined, fuse=fuse,
        )

    tracer = get_tracer()
    met = get_metrics()
    # extend each rank's telemetry row with per-sparse-worker folded slots
    # when the ranks will drive their own SparseProcessBackend fleets (the
    # parent cannot see a grandchild's plane, so the rank folds it in)
    rank_slots = list(RANK_SLOTS)
    if opts.sparse_backend == "process":
        for w in range(max(1, opts.sparse_workers)):
            rank_slots += [
                f"sw{w}_tasks",
                f"sw{w}_busy_seconds",
                f"sw{w}_spin_iters",
                f"sw{w}_spin_seconds",
            ]
    with DistRuntime(
        decomp,
        halo_width=GRAD_LIMITER_WIDTH,
        red_width=_red_width_for(opts),
        allreduce_algo=allreduce_algo,
        timeout=timeout,
        telemetry=telemetry,
        rank_slots=tuple(rank_slots),
    ) as rt:
        with tracer.span(
            "dist-solve", n_ranks=decomp.n_ranks, pipelined=pipelined,
            allreduce_algo=allreduce_algo,
        ):
            results = rt.run(program)
            _fold_rank_spans(tracer, decomp, results, pipelined)

    q = np.zeros((nv, 4))
    for r, rr in enumerate(results):
        q[decomp.domains[r].owned] = rr.value.q

    s0 = results[0].value
    solve = SolveResult(
        q=q,
        steps=s0.steps,
        linear_iterations=s0.linear_iterations,
        residual_history=s0.residual_history,
        cfl_history=s0.cfl_history,
        converged=s0.converged,
    )

    rank_stats = []
    for rr in results:
        stats = dict(rr.comm_stats)
        stats["interior_seconds"] = rr.value.interior_seconds
        stats["elapsed"] = rr.value.elapsed
        rank_stats.append(stats)

    # measured communication accounting (replaces the modeled counts the
    # serial gmres charges): real reductions, real pack/unpack walls
    met.counter("gmres.allreduces").inc(int(rank_stats[0]["allreduces"]))
    met.counter("halo.exchanges").inc(int(rank_stats[0]["exchanges"]))
    met.counter("halo.messages").inc(
        int(sum(s["messages"] for s in rank_stats))
    )
    met.counter("halo.bytes").inc(
        int(sum(s["bytes_sent"] for s in rank_stats))
    )
    met.gauge("dist.halo_seconds").set(
        max(s["halo_seconds"] for s in rank_stats)
    )
    met.gauge("dist.allreduce_seconds").set(
        max(s["allreduce_seconds"] for s in rank_stats)
    )
    met.gauge("dist.interior_seconds").set(
        max(s["interior_seconds"] for s in rank_stats)
    )
    met.gauge("dist.n_ranks").set(decomp.n_ranks)

    return DistSolveResult(
        result=solve,
        n_ranks=decomp.n_ranks,
        pipelined=pipelined,
        labels=labels,
        rank_stats=rank_stats,
    )


def _fold_rank_spans(tracer, decomp, results, pipelined: bool) -> None:
    """Attach each rank's recorded spans as a ``rank<i>`` subtree."""
    if not tracer.active:
        return
    for rr in results:
        if not rr.spans:
            continue
        t0 = min(s[1] for s in rr.spans)
        t1 = max(s[2] for s in rr.spans)
        node = tracer.add_complete(
            f"rank{rr.rank}",
            t0,
            t1,
            pipelined=pipelined,
            n_owned=int(decomp.domains[rr.rank].n_owned),
        )
        for name, s0, s1, attrs in rr.spans:
            node.children.append(Span(name, t0=s0, t1=s1, attrs=dict(attrs)))
