"""Process-rank distributed runtime: the executable Fig 9-11 layer.

An MPI-like runtime where each :class:`~repro.dist.halo.DomainDecomposition`
subdomain runs in its own forked process over shared memory — real halo
exchanges (pack -> shm mailbox -> unpack), deterministic collectives, and a
pipelined mode that overlaps interior compute with in-flight halo fills.
"""

from .comm import Communicator, CommTimeout, ShmTransport, SpanRecorder
from .driver import DistSolveResult, distributed_solve
from .program import (
    RankData,
    RankSolveStats,
    build_rank_data,
    rank_residual,
    rank_solve_steady,
)
from .runtime import DistRuntime, RankResult

__all__ = [
    "Communicator",
    "CommTimeout",
    "ShmTransport",
    "SpanRecorder",
    "DistRuntime",
    "RankResult",
    "RankData",
    "RankSolveStats",
    "build_rank_data",
    "rank_residual",
    "rank_solve_steady",
    "DistSolveResult",
    "distributed_solve",
]
