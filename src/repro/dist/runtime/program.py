"""The rank program: per-subdomain NKS solve over the communicator.

Each rank owns a contiguous slice of the global problem (its subdomain's
owned vertices) plus one ghost layer, and replays the exact serial solver
arithmetic on local arrays:

* **residual** — interior-edge fluxes and gradient contributions touch only
  owned data and run *inside* the halo window; cut-edge contributions (the
  edges the decomposition severed) wait for the ghosts.  Plain mode and
  pipelined mode execute the identical interior-then-cut arithmetic — the
  only difference is whether the exchange blocks up front or overlaps the
  interior compute — so the two are bitwise-identical and only their span
  layout differs (the Fig 10 overlap, observable in the trace).
* **preconditioner** — block-ILU of the rank's owned-by-owned first-order
  Jacobian (cut edges contribute their owned-side diagonal blocks), i.e.
  zero-overlap additive Schwarz with one subdomain per rank, applied with
  no communication.
* **Newton/GMRES control flow** — replicated on every rank.  All global
  scalars (residual norms, Hessenberg entries, CFL, update clips) come out
  of deterministic allreduces, so every rank takes the same branches and
  the distributed iteration is a single well-defined sequence.

Numerics contract: per-edge/per-face arithmetic is identical to the serial
kernels (only summation order differs), and the converged steady state
matches the serial solver's to the outer tolerance — verified end-to-end in
``tests/test_dist_runtime.py``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field as dc_field

import numpy as np

from ...cfd.flux import edge_spectral_radius, numerical_edge_flux
from ...cfd.jacobian import analytic_flux_jacobian
from ...cfd.state import NVARS, FlowConfig, freestream_state
from ...cfd.timestep import ser_cfl
from ...perf.scatter import (
    edge_difference_plan,
    edge_sum_plan,
    jacobian_edge_plan,
    scatter_plan,
    segment_reduce_plan,
)
from ...solver.newton import SolverOptions
from ...sparse.bcsr import BCSRMatrix, bcsr_pattern_from_edges
from ...sparse.ilu import build_ilu_plan, ilu_factorize
from ...sparse.trsv import TrsvWorkspace, trsv_solve
from .comm import Communicator

__all__ = ["RankData", "build_rank_data", "rank_residual", "rank_solve_steady"]

#: widest halo payload: 12 gradient + 4 limiter doubles per vertex
GRAD_LIMITER_WIDTH = 16


@dataclass
class RankData:
    """One rank's kernel-ready slice of the problem (built in the parent,
    inherited copy-on-write through ``fork``).

    Local vertex numbering: owned vertices first (``0..n_owned``), then
    ghosts.  Local edges are reordered *interior first* — edges with both
    endpoints owned, computable before any ghost arrives — followed by the
    cut edges; within each class the global edge order (and orientation) is
    preserved, so per-edge arithmetic matches the serial kernels exactly.
    """

    rank: int
    n_owned: int
    n_local: int
    n_global: int
    e0: np.ndarray  # local edge endpoints, interior-first
    e1: np.ndarray
    normals: np.ndarray
    d0: np.ndarray  # edge midpoint - x[e0]
    d1: np.ndarray
    n_interior: int  # edges [0:n_interior] have both endpoints owned
    volumes: np.ndarray  # (n_owned,)
    lsq_inv: np.ndarray  # (n_owned, 3, 3)
    #: flattened boundary corners restricted to owned vertices:
    #: tag -> (local vertex ids, per-corner normals)
    bcorners: dict[str, tuple[np.ndarray, np.ndarray]]
    q0: np.ndarray  # (n_owned, 4) initial owned state

    @property
    def int_e0(self) -> np.ndarray:
        return self.e0[: self.n_interior]

    @property
    def int_e1(self) -> np.ndarray:
        return self.e1[: self.n_interior]

    @property
    def cut_e0(self) -> np.ndarray:
        return self.e0[self.n_interior :]

    @property
    def cut_e1(self) -> np.ndarray:
        return self.e1[self.n_interior :]


def build_rank_data(
    field, config: FlowConfig, decomp, q0: np.ndarray | None = None
) -> list[RankData]:
    """Slice a :class:`~repro.cfd.state.FlowField` into per-rank views.

    Edge metrics are gathered by the decomposition's ``edge_ids`` (global
    edge ids of each rank's local edges, orientation preserved); boundary
    faces are flattened to per-corner contributions and restricted to each
    rank's owned vertices, which is exactly the set the serial boundary
    kernels scatter into.
    """
    if config.mu > 0.0:
        raise NotImplementedError(
            "viscous fluxes are not supported by the distributed runtime"
        )
    if q0 is None:
        q0 = field.initial_state(config)

    def flat_corners(faces: np.ndarray, vnormals: np.ndarray):
        """(global vertex ids, per-corner normals) in the serial kernels'
        column-major corner order."""
        if faces.shape[0] == 0:
            return (
                np.zeros(0, dtype=np.int64),
                np.zeros((0, 3)),
            )
        verts = np.concatenate([faces[:, c] for c in range(3)])
        normals = np.concatenate([vnormals] * 3, axis=0)
        return verts, normals

    btags = {
        "wall": flat_corners(field.wall_faces, field.wall_vnormals),
        "sym": flat_corners(field.sym_faces, field.sym_vnormals),
        "far": flat_corners(field.far_faces, field.far_vnormals),
    }

    out: list[RankData] = []
    for dom in decomp.domains:
        le, eids = dom.local_edges, dom.edge_ids
        n_owned = dom.n_owned
        interior = (le[:, 0] < n_owned) & (le[:, 1] < n_owned)
        order = np.concatenate(
            [np.where(interior)[0], np.where(~interior)[0]]
        )
        ge = eids[order]
        bcorners: dict[str, tuple[np.ndarray, np.ndarray]] = {}
        for tag, (verts, normals) in btags.items():
            sel = np.where(decomp.labels[verts] == dom.rank)[0]
            local = np.searchsorted(dom.owned, verts[sel])
            bcorners[tag] = (local, np.ascontiguousarray(normals[sel]))
        out.append(
            RankData(
                rank=dom.rank,
                n_owned=n_owned,
                n_local=dom.n_local,
                n_global=field.n_vertices,
                e0=np.ascontiguousarray(le[order, 0]),
                e1=np.ascontiguousarray(le[order, 1]),
                normals=np.ascontiguousarray(field.enormals[ge]),
                d0=np.ascontiguousarray(field.emid_d0[ge]),
                d1=np.ascontiguousarray(field.emid_d1[ge]),
                n_interior=int(interior.sum()),
                volumes=np.ascontiguousarray(field.volumes[dom.owned]),
                lsq_inv=np.ascontiguousarray(field.lsq_inv[dom.owned]),
                bcorners=bcorners,
                q0=np.ascontiguousarray(q0[dom.owned]),
            )
        )
    return out


class _Workspace:
    """Persistent per-rank arrays reused across residual evaluations.

    Also owns the rank's compiled scatter plans (one per static edge-slice /
    boundary-tag index structure), so every residual evaluation runs the
    precompiled segment reduction instead of ``np.add.at``.
    """

    def __init__(self, data: RankData) -> None:
        nl, no = data.n_local, data.n_owned
        self.q = np.zeros((nl, NVARS))
        self.grad = np.zeros((nl, NVARS, 3))
        self.limiter = np.ones((nl, NVARS))
        self.rhs = np.zeros((nl, NVARS, 3))
        self.res = np.zeros((nl, NVARS))
        self.qmin = np.zeros((nl, NVARS))  # fused-pipeline neighbor bounds
        self.qmax = np.zeros((nl, NVARS))
        self.q[:no] = data.q0
        self.interior_seconds = 0.0
        self._data = data
        self._plans: dict = {}

    def edge_plan(self, sl: slice, kind: str):
        """Cached edge scatter plan of the edges in ``sl`` over local rows.

        ``kind`` is ``"diff"`` (flux: +e0 / -e1) or ``"sum"`` (gradient and
        spectral-radius accumulation: +e0 / +e1).
        """
        key = (kind, sl.start, sl.stop)
        plan = self._plans.get(key)
        if plan is None:
            d = self._data
            build = edge_difference_plan if kind == "diff" else edge_sum_plan
            plan = build(
                d.e0[sl], d.e1[sl], d.n_local, name=f"dist.edge.{kind}"
            )
            self._plans[key] = plan
        return plan

    def boundary_plan(self, tag: str):
        """Cached per-corner scatter plan of one boundary tag."""
        key = ("bnd", tag)
        plan = self._plans.get(key)
        if plan is None:
            verts, _ = self._data.bcorners[tag]
            plan = scatter_plan(
                verts, self._data.n_local, name="dist.boundary"
            )
            self._plans[key] = plan
        return plan

    def minmax_plan(self, sl: slice):
        """Cached segment min/max plan over both endpoints of the edges in
        ``sl`` (fused recon sweep: neighbor bounds fold)."""
        key = ("mm", sl.start, sl.stop)
        plan = self._plans.get(key)
        if plan is None:
            d = self._data
            plan = segment_reduce_plan(
                np.concatenate([d.e0[sl], d.e1[sl]]),
                d.n_local,
                name="dist.kgir.minmax",
            )
            self._plans[key] = plan
        return plan

    def phi_plan(self, end: int):
        """Cached scatter-min plan over the owned rows of endpoint ``end``
        across all local edges (fused limiter fold)."""
        key = ("phi", end)
        plan = self._plans.get(key)
        if plan is None:
            d = self._data
            e = d.e0 if end == 0 else d.e1
            plan = segment_reduce_plan(
                e[e < d.n_owned], d.n_local, name="dist.kgir.phi"
            )
            self._plans[key] = plan
        return plan


def _interior_span(comm: Communicator, ws: _Workspace, t0: float, edges: int):
    t1 = time.perf_counter()
    ws.interior_seconds += t1 - t0
    comm.recorder.add("interior", t0, t1, edges=edges)


def _venkat_local(data: RankData, ws: _Workspace, k: float) -> None:
    """Venkatakrishnan limiter for the owned vertices (serial formula on
    local arrays; neighbor min/max sees ghosts, so owned rows are exact)."""
    q, grad = ws.q, ws.grad
    e0, e1 = data.e0, data.e1
    qmin = q.copy()
    qmax = q.copy()
    np.minimum.at(qmin, e0, q[e1])
    np.minimum.at(qmin, e1, q[e0])
    np.maximum.at(qmax, e0, q[e1])
    np.maximum.at(qmax, e1, q[e0])
    eps2 = (k**3) * data.volumes  # (n_owned,)
    phi = ws.limiter
    phi[: data.n_owned] = 1.0
    for end, disp in ((e0, data.d0), (e1, data.d1)):
        sel = end < data.n_owned  # only owned rows need phi (and have grad)
        endo, dispo = end[sel], disp[sel]
        d2 = np.einsum("nvi,ni->nv", grad[endo], dispo)
        dmax = qmax[endo] - q[endo]
        dmin = qmin[endo] - q[endo]
        d1 = np.where(d2 > 0.0, dmax, dmin)
        e2 = eps2[endo][:, None]
        num = (d1 * d1 + e2) * d2 + 2.0 * d2 * d2 * d1
        den = d2 * (d1 * d1 + 2.0 * d2 * d2 + d1 * d2 + e2)
        with np.errstate(divide="ignore", invalid="ignore"):
            val = np.where(np.abs(d2) > 1e-14, num / den, 1.0)
        val = np.clip(val, 0.0, 1.0)
        np.minimum.at(phi, endo, val)


def _fused_minmax(data: RankData, ws: _Workspace, sl: slice) -> None:
    """Fold the edges in ``sl`` into the neighbor min/max bounds — the
    half of the fused recon sweep that shares its gather of ``q`` with the
    gradient accumulation.  min/max are order-free exact, so splitting the
    fold interior/cut is bitwise-equal to the one-shot ``ufunc.at`` in
    :func:`_venkat_local`."""
    e0, e1 = data.e0[sl], data.e1[sl]
    vals = np.concatenate([ws.q[e1], ws.q[e0]], axis=0)
    plan = ws.minmax_plan(sl)
    plan.apply(vals, ws.qmin, "min")
    plan.apply(vals, ws.qmax, "max")


def _venkat_fused(data: RankData, ws: _Workspace, k: float) -> None:
    """Fused limiter sweep: identical per-edge arithmetic to
    :func:`_venkat_local`, but the neighbor bounds were already folded by
    the recon sweep and the scatter-min runs through a precompiled
    segment plan instead of ``np.minimum.at``."""
    q, grad, qmin, qmax = ws.q, ws.grad, ws.qmin, ws.qmax
    eps2 = (k**3) * data.volumes
    phi = ws.limiter
    phi[: data.n_owned] = 1.0
    for end_i, (end, disp) in enumerate(
        ((data.e0, data.d0), (data.e1, data.d1))
    ):
        sel = end < data.n_owned
        endo, dispo = end[sel], disp[sel]
        d2 = np.einsum("nvi,ni->nv", grad[endo], dispo)
        dmax = qmax[endo] - q[endo]
        dmin = qmin[endo] - q[endo]
        d1 = np.where(d2 > 0.0, dmax, dmin)
        e2 = eps2[endo][:, None]
        num = (d1 * d1 + e2) * d2 + 2.0 * d2 * d2 * d1
        den = d2 * (d1 * d1 + 2.0 * d2 * d2 + d1 * d2 + e2)
        with np.errstate(divide="ignore", invalid="ignore"):
            val = np.where(np.abs(d2) > 1e-14, num / den, 1.0)
        val = np.clip(val, 0.0, 1.0)
        ws.phi_plan(end_i).apply(val, phi, "min")


def _boundary_residual(
    data: RankData, ws: _Workspace, config: FlowConfig
) -> None:
    """Owned-vertex boundary fluxes, accumulated into ``ws.res``."""
    q, res = ws.q, ws.res
    for tag in ("wall", "sym"):
        verts, normals = data.bcorners[tag]
        if verts.shape[0] == 0:
            continue
        contrib = np.zeros((verts.shape[0], NVARS))
        contrib[:, 1:4] = normals * q[verts, 0:1]
        ws.boundary_plan(tag).apply(contrib, out=res, accumulate=True)
    verts, normals = data.bcorners["far"]
    if verts.shape[0]:
        qi = q[verts]
        qe = np.broadcast_to(freestream_state(config), qi.shape)
        fl = numerical_edge_flux(
            qi, qe, normals, config.beta, config.dissipation
        )
        ws.boundary_plan("far").apply(fl, out=res, accumulate=True)


def _edge_flux(
    data: RankData,
    ws: _Workspace,
    sl: slice,
    config: FlowConfig,
    second_order: bool,
) -> None:
    """Flux of the edges in ``sl`` scattered into ``ws.res`` (ghost rows of
    ``res`` absorb the cut edges' off-rank halves harmlessly)."""
    e0, e1 = data.e0[sl], data.e1[sl]
    q = ws.q
    ql = q[e0]
    qr = q[e1]
    if second_order:
        dq0 = np.einsum("nvi,ni->nv", ws.grad[e0], data.d0[sl])
        dq1 = np.einsum("nvi,ni->nv", ws.grad[e1], data.d1[sl])
        ql = ql + dq0 * ws.limiter[e0]
        qr = qr + dq1 * ws.limiter[e1]
    flux = numerical_edge_flux(
        ql, qr, data.normals[sl], config.beta, config.dissipation
    )
    ws.edge_plan(sl, "diff").apply(flux, out=ws.res, accumulate=True)


def rank_residual(
    data: RankData,
    comm: Communicator,
    ws: _Workspace,
    config: FlowConfig,
    pipelined: bool,
    fuse: bool = False,
) -> np.ndarray:
    """Distributed spatial residual of the owned vertices.

    ``ws.q[:n_owned]`` holds the owned state on entry; ghosts are refreshed
    here.  Pipelined mode overlaps each halo window with the interior work
    that window makes safe; plain mode runs the same interior/cut split
    back-to-back, so both modes produce bit-identical residuals.

    ``fuse=True`` runs the kernel-graph fused pipeline: the gradient
    accumulation and the limiter's neighbor min/max fold share one pass
    (and one gather) over each edge slice, and the limiter scatter-min
    runs through a precompiled segment plan.  Bitwise-identical to the
    unfused path (min/max folds are order-free exact; everything else is
    the same statements), with per-stage ``fuse.recon`` / ``fuse.limit``
    spans in the rank's trace.
    """
    second_order = config.second_order
    ii = slice(0, data.n_interior)
    ic = slice(data.n_interior, data.e0.shape[0])

    def window(payload, interior_work) -> None:
        """Run one halo window: pipelined overlaps ``interior_work`` with
        the in-flight exchange (interior span nested inside the halo
        span); plain completes the exchange first (disjoint spans).  Both
        run the identical arithmetic."""
        if pipelined:
            token = comm.exchange_begin(payload)
            t0 = time.perf_counter()
            interior_work()
            comm.exchange_end(token, payload)
        else:
            comm.halo_exchange(payload)
            t0 = time.perf_counter()
            interior_work()
        _interior_span(comm, ws, t0, data.n_interior)

    def grad_accumulate(sl: slice) -> None:
        e0, e1 = data.e0[sl], data.e1[sl]
        dx = data.d0[sl] * 2.0  # x[e1] - x[e0]
        dq = ws.q[e1] - ws.q[e0]
        contrib = dq[:, :, None] * dx[:, None, :]
        ws.edge_plan(sl, "sum").apply(contrib, out=ws.rhs, accumulate=True)

    # ---- window 1: state exchange || interior gradient accumulation ----
    if second_order and fuse:
        # fused recon: one pass per edge slice accumulates the gradient
        # rhs AND folds the neighbor min/max (interior edges touch only
        # owned q, so the interior half runs inside the halo window)
        ws.rhs.fill(0.0)
        ws.qmin[...] = ws.q
        ws.qmax[...] = ws.q

        def recon(sl: slice) -> None:
            t0 = time.perf_counter()
            grad_accumulate(sl)
            _fused_minmax(data, ws, sl)
            comm.recorder.add(
                "fuse.recon", t0, time.perf_counter(),
                edges=sl.stop - sl.start,
            )

        window([ws.q], lambda: recon(ii))
        recon(ic)  # cut-edge contributions (need ghost q)
        ws.grad[: data.n_owned] = np.einsum(
            "nij,nvj->nvi", data.lsq_inv, ws.rhs[: data.n_owned]
        )
        t0 = time.perf_counter()
        _venkat_fused(data, ws, config.limiter_k)
        comm.recorder.add(
            "fuse.limit", t0, time.perf_counter(), edges=data.e0.shape[0]
        )
        exchange_payload = [ws.grad, ws.limiter]
    elif second_order:
        ws.rhs.fill(0.0)
        window([ws.q], lambda: grad_accumulate(ii))
        grad_accumulate(ic)  # cut-edge contributions (need ghost q)
        ws.grad[: data.n_owned] = np.einsum(
            "nij,nvj->nvi", data.lsq_inv, ws.rhs[: data.n_owned]
        )
        _venkat_local(data, ws, config.limiter_k)
        exchange_payload = [ws.grad, ws.limiter]
    else:
        # first order: the one exchange (state only) overlaps window 2
        exchange_payload = [ws.q]

    # ---- window 2: grad/limiter exchange || interior flux + boundary ----
    ws.res.fill(0.0)

    def flux_interior() -> None:
        _edge_flux(data, ws, ii, config, second_order)
        _boundary_residual(data, ws, config)

    window(exchange_payload, flux_interior)
    # cut-edge fluxes (ghost reconstruction now available)
    _edge_flux(data, ws, ic, config, second_order)
    return ws.res[: data.n_owned]


def _local_timestep(
    data: RankData, ws: _Workspace, config: FlowConfig, cfl: float
) -> np.ndarray:
    """Owned-vertex pseudo time steps (serial formula; ghosts are fresh
    because this runs right after a residual evaluation on the same q)."""
    q = ws.q
    lam_e = edge_spectral_radius(
        q[data.e0], q[data.e1], data.normals, config.beta
    )
    lam_sum = ws.edge_plan(slice(0, data.e0.shape[0]), "sum").apply(lam_e)
    for tag in ("wall", "sym", "far"):
        verts, normals = data.bcorners[tag]
        if verts.shape[0] == 0:
            continue
        lam_b = edge_spectral_radius(q[verts], q[verts], normals, config.beta)
        ws.boundary_plan(tag).apply(lam_b, out=lam_sum, accumulate=True)
    lam = np.maximum(lam_sum[: data.n_owned], 1e-30)
    return cfl * data.volumes / lam


class _RankJacobian:
    """First-order Jacobian of the rank's owned-by-owned block + ILU.

    The pattern comes from the interior (owned-owned) edges; cut edges
    land only on their owned endpoint's diagonal block.  This equals the
    owned-rows-and-columns restriction of the global first-order Jacobian
    — i.e. the zero-overlap additive-Schwarz subdomain matrix the serial
    preconditioner factorizes — assembled without any communication.
    """

    def __init__(self, data: RankData, fill_level: int) -> None:
        no = data.n_owned
        edges = np.column_stack([data.int_e0, data.int_e1])
        self.rowptr, self.cols = bcsr_pattern_from_edges(edges, no)
        keys = np.repeat(
            np.arange(no, dtype=np.int64), np.diff(self.rowptr)
        ) * np.int64(no) + self.cols
        self._diag_idx = np.searchsorted(
            keys, np.arange(no, dtype=np.int64) * no + np.arange(no)
        )
        self._idx_ij = np.searchsorted(
            keys, data.int_e0 * np.int64(no) + data.int_e1
        )
        self._idx_ji = np.searchsorted(
            keys, data.int_e1 * np.int64(no) + data.int_e0
        )
        self._cut_sel0 = np.where(data.cut_e0 < no)[0]
        self._cut_sel1 = np.where(data.cut_e1 < no)[0]
        nnzb = self.cols.shape[0]
        self._edge_plan = jacobian_edge_plan(
            self._diag_idx[data.int_e0],
            self._idx_ij,
            self._diag_idx[data.int_e1],
            self._idx_ji,
            nnzb,
            name="jacobian.edge",
        )
        self._cut_plan0 = scatter_plan(
            self._diag_idx[data.cut_e0[self._cut_sel0]],
            nnzb,
            name="jacobian.cut",
        )
        self._cut_plan1 = scatter_plan(
            self._diag_idx[data.cut_e1[self._cut_sel1]],
            nnzb,
            sign=-1.0,
            name="jacobian.cut",
        )
        self._bc_plans = {
            tag: scatter_plan(
                self._diag_idx[data.bcorners[tag][0]],
                nnzb,
                name="jacobian.bc",
            )
            for tag in ("wall", "sym", "far")
        }
        self.matrix = BCSRMatrix.from_pattern(self.rowptr, self.cols, NVARS)
        self.plan = build_ilu_plan(
            self.rowptr, self.cols, b=NVARS, fill_level=fill_level
        )
        self._factor = None
        self._data = data
        self._tws = TrsvWorkspace.for_plan(self.plan)

    def update(
        self, ws: _Workspace, config: FlowConfig, dt: np.ndarray
    ) -> None:
        data, q = self._data, ws.q
        beta = config.beta
        vals = self.matrix.vals
        vals[:] = 0.0
        eye = np.eye(NVARS)

        ql, qr = q[data.int_e0], q[data.int_e1]
        normals = data.normals[: data.n_interior]
        Ai = analytic_flux_jacobian(ql, normals, beta)
        Aj = analytic_flux_jacobian(qr, normals, beta)
        lamI = edge_spectral_radius(ql, qr, normals, beta)[:, None, None] * eye
        dFdqi = 0.5 * Ai + 0.5 * lamI
        dFdqj = 0.5 * Aj - 0.5 * lamI
        self._edge_plan.apply(
            np.concatenate([dFdqi, dFdqj]), out=vals, accumulate=True
        )

        # cut edges: the owned endpoint's diagonal block only (the off-rank
        # coupling is what block-Jacobi drops)
        if data.cut_e0.shape[0]:
            ql, qr = q[data.cut_e0], q[data.cut_e1]
            normals = data.normals[data.n_interior :]
            Ai = analytic_flux_jacobian(ql, normals, beta)
            Aj = analytic_flux_jacobian(qr, normals, beta)
            lamI = (
                edge_spectral_radius(ql, qr, normals, beta)[:, None, None]
                * eye
            )
            dFdqi = 0.5 * Ai + 0.5 * lamI
            dFdqj = 0.5 * Aj - 0.5 * lamI
            s0, s1 = self._cut_sel0, self._cut_sel1
            self._cut_plan0.apply(dFdqi[s0], out=vals, accumulate=True)
            self._cut_plan1.apply(dFdqj[s1], out=vals, accumulate=True)

        for tag in ("wall", "sym"):
            verts, normals = data.bcorners[tag]
            if verts.shape[0] == 0:
                continue
            blk = np.zeros((verts.shape[0], NVARS, NVARS))
            blk[:, 1:4, 0] = normals
            self._bc_plans[tag].apply(blk, out=vals, accumulate=True)

        verts, normals = data.bcorners["far"]
        if verts.shape[0]:
            qi = q[verts]
            q_inf = freestream_state(config)
            Af = analytic_flux_jacobian(qi, normals, beta)
            lam_f = edge_spectral_radius(
                qi, np.broadcast_to(q_inf, qi.shape), normals, beta
            )
            blk = 0.5 * Af + 0.5 * lam_f[:, None, None] * eye
            self._bc_plans["far"].apply(blk, out=vals, accumulate=True)

        vals[self._diag_idx] += (data.volumes / dt)[:, None, None] * eye
        self._factor = ilu_factorize(self.matrix, self.plan)

    def apply(self, r: np.ndarray) -> np.ndarray:
        # no out=: dist_gmres stores the result in its flexible basis, so
        # the solve must hand back a fresh array (work covers the scratch)
        z = trsv_solve(self._factor, r.reshape(-1, NVARS), work=self._tws)
        return z.reshape(r.shape)


@dataclass
class RankSolveStats:
    """Per-rank outcome shipped back to the parent."""

    q: np.ndarray
    steps: int
    linear_iterations: int
    residual_history: list[float]
    cfl_history: list[float]
    converged: bool
    interior_seconds: float
    elapsed: float
    extras: dict = dc_field(default_factory=dict)


def rank_solve_steady(
    data: RankData,
    comm: Communicator,
    config: FlowConfig,
    opts: SolverOptions,
    pipelined: bool = False,
    fuse: bool = False,
) -> RankSolveStats:
    """One rank's pseudo-transient Newton loop (the distributed
    counterpart of :func:`repro.solver.newton.solve_steady`).

    Control flow is replicated: every global scalar is a deterministic
    allreduce, so all ranks take identical branches.

    With ``opts.sparse_backend == "process"`` each rank drives its own
    :class:`~repro.smp.sparse_parallel.SparseProcessBackend` fleet for the
    block-Jacobi ILU/TRSV (paper-style MPI+threads nesting); the per-worker
    ``ilu.w<i>`` / ``trsv.w<i>`` spans land in the rank's span log.
    """
    from ...solver.distributed import dist_fd_operator, dist_gmres

    if opts.sparse_backend == "process":
        from ...smp.sparse_parallel import SparseProcessBackend
        from ...sparse.dispatch import use_sparse_backend

        with SparseProcessBackend(
            n_workers=max(1, opts.sparse_workers),
            strategy=opts.sparse_strategy,
            span_sink=comm.recorder.add,
        ) as backend, use_sparse_backend(backend):
            return _rank_solve_steady_impl(
                data, comm, config, opts, pipelined, fuse, sparse=backend
            )
    return _rank_solve_steady_impl(data, comm, config, opts, pipelined, fuse)


def _rank_solve_steady_impl(
    data: RankData,
    comm: Communicator,
    config: FlowConfig,
    opts: SolverOptions,
    pipelined: bool,
    fuse: bool = False,
    sparse=None,
) -> RankSolveStats:
    from ...solver.distributed import dist_fd_operator, dist_gmres

    t_start = time.perf_counter()
    ws = _Workspace(data)
    jac = _RankJacobian(data, opts.ilu_fill)
    no = data.n_owned
    n_unknowns = NVARS * data.n_global

    def spatial_residual(u_flat: np.ndarray) -> np.ndarray:
        ws.q[:no] = u_flat.reshape(no, NVARS)
        return rank_residual(
            data, comm, ws, config, pipelined, fuse
        ).reshape(-1)

    history: list[float] = []
    cfls: list[float] = []
    total_linear = 0
    converged = False
    cfl = opts.cfl0
    r0_norm = None
    step = 0
    q_owned = data.q0.copy()

    def publish(step: int, rnorm: float, cfl: float, iters: int) -> None:
        """Write this rank's solver-progress slots (and fold in the rank's
        sparse worker fleet, whose plane only this process can see)."""
        if comm.telem is None:
            return
        vals = {
            "step": float(step),
            "residual": float(rnorm),
            "cfl": float(cfl),
            "krylov_iters": float(iters),
            "interior_seconds": ws.interior_seconds,
        }
        if sparse is not None:
            for wid, tot in sparse.worker_telemetry_totals().items():
                for k, v in tot.items():
                    vals[f"sw{wid}_{k}"] = float(v)
        comm.telem.update(**vals)
        comm.telem.push_event("note", float(step), float(rnorm))

    for step in range(1, opts.max_steps + 1):
        ws.q[:no] = q_owned
        res = rank_residual(data, comm, ws, config, pipelined, fuse).copy()
        rnorm = float(
            np.sqrt(comm.allreduce(float(np.sum(res * res))) / n_unknowns)
        )
        history.append(rnorm)
        publish(step, rnorm, cfl, total_linear)
        if r0_norm is None:
            r0_norm = rnorm
        if rnorm <= max(opts.steady_rtol * r0_norm, opts.steady_atol):
            converged = True
            break

        cfl = ser_cfl(
            opts.cfl0, r0_norm, rnorm, cfl_max=opts.cfl_max, cfl_prev=cfl
        )
        cfls.append(cfl)
        dt = _local_timestep(data, ws, config, cfl)
        jac.update(ws, config, dt)

        diag = np.repeat(data.volumes / dt, NVARS)
        if opts.matrix_free:
            op = dist_fd_operator(
                spatial_residual,
                q_owned.reshape(-1),
                comm,
                n_unknowns,
                r0=res.reshape(-1),
                diag=diag,
            )
        else:
            op = jac.matrix.matvec

        result = dist_gmres(
            op,
            -res.reshape(-1),
            comm,
            precond=jac.apply,
            rtol=opts.gmres_rtol,
            restart=opts.gmres_restart,
            maxiter=opts.gmres_maxiter,
        )
        total_linear += result.iterations

        du = result.x.reshape(no, NVARS)
        m_local = float(np.abs(du).max()) if du.size else 0.0
        m = comm.allreduce(m_local, op="max")
        scale = min(1.0, opts.max_update / m) if m > 0 else 1.0
        q_owned += scale * du

    publish(step, history[-1] if history else 0.0, cfl, total_linear)
    return RankSolveStats(
        q=q_owned,
        steps=step,
        linear_iterations=total_linear,
        residual_history=history,
        cfl_history=cfls,
        converged=converged,
        interior_seconds=ws.interior_seconds,
        elapsed=time.perf_counter() - t_start,
    )
