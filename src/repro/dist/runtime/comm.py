"""Cross-process communicator: shared-memory halo exchange and collectives.

This is the message layer of the rank runtime.  Each neighbor pair of the
:class:`~repro.dist.halo.DomainDecomposition` gets a mailbox — a
shared-memory buffer sized for that pair's send list — guarded by a classic
producer/consumer semaphore pair (``free``/``full``), so an exchange is a
real cross-address-space pack -> transmit -> unpack with flow control, not
a function call.  Collectives reduce through a shared slot array: the flat
algorithm has every rank deposit its contribution and, after a barrier,
re-reduce all slots *in rank order* (every rank computes the bitwise-same
result — the determinism MPI_Allreduce only promises per run, made
unconditional); the tree algorithm runs a binomial gather to rank 0 and a
broadcast back, trading two barriers for ``O(log P)`` point-to-point hops.

Two-phase exchange (:meth:`Communicator.exchange_begin` /
:meth:`~Communicator.exchange_end`) is the executable Fig 10 overlap: the
pack+post happens eagerly, the caller computes interior work, and only the
unpack waits on neighbors.  Every exchange and collective records a
``rank<i>.halo`` / ``rank<i>.allreduce`` span with its measured wall
interval, which the parent folds into the observability trace tree.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field as dc_field
from typing import Any, Sequence

import numpy as np

from ...obs.live.ring import STATE_BUSY, STATE_SPIN

__all__ = [
    "SpanRecorder",
    "ShmTransport",
    "Communicator",
    "CommTimeout",
    "RANK_SLOTS",
]

#: doubles per vertex a halo mailbox can carry in one message (state q is 4,
#: gradients 12, gradient+limiter 16)
DEFAULT_HALO_WIDTH = 16
#: scalar slots per rank in the reduction scratch (>= GMRES restart + 1)
DEFAULT_RED_WIDTH = 64

#: default metric slots of one rank's telemetry row: solver progress
#: (written by the rank program) plus communication totals (written by the
#: communicator itself)
RANK_SLOTS = (
    "step",
    "residual",
    "cfl",
    "krylov_iters",
    "exchanges",
    "allreduces",
    "halo_seconds",
    "allreduce_seconds",
    "interior_seconds",
)


class CommTimeout(RuntimeError):
    """A blocking communicator operation exceeded its deadline."""


@dataclass
class SpanRecorder:
    """Per-rank span log, shipped to the parent when the rank finishes."""

    rank: int
    spans: list[tuple[str, float, float, dict[str, Any]]] = dc_field(
        default_factory=list
    )

    def add(self, name: str, t0: float, t1: float, **attrs: Any) -> None:
        self.spans.append((f"rank{self.rank}.{name}", t0, t1, attrs))


class ShmTransport:
    """Parent-side owner of mailboxes, reduction scratch and sync primitives.

    Built once per distributed run from the decomposition's send lists; the
    forked ranks construct :class:`Communicator` views onto it.  All shared
    segments live in one :class:`~repro.smp.shm.SharedArrayPool`, so the
    existing leak-proofing (atexit, context manager, owner-only unlink)
    covers the runtime too.
    """

    def __init__(
        self,
        decomp,
        ctx,
        halo_width: int = DEFAULT_HALO_WIDTH,
        red_width: int = DEFAULT_RED_WIDTH,
        timeout: float = 120.0,
        telemetry: bool = True,
        rank_slots: Sequence[str] | None = None,
    ) -> None:
        from ...smp.shm import SharedArrayPool

        self.decomp = decomp
        self.n_ranks = decomp.n_ranks
        self.halo_width = int(halo_width)
        self.red_width = int(red_width)
        self.timeout = float(timeout)
        self.pool = SharedArrayPool()
        # reduction scratch: one row per rank plus a result row for the
        # tree algorithm's broadcast
        self.pool.zeros("red", (self.n_ranks + 1, self.red_width))
        self.sems: dict[tuple[int, int], tuple] = {}
        for dom in decomp.domains:
            for dst, send_idx in dom.send_lists.items():
                key = (dom.rank, dst)
                self.pool.zeros(
                    f"hb.{key[0]}.{key[1]}",
                    (max(1, send_idx.shape[0]), self.halo_width),
                )
                # free starts at 1 (mailbox empty), full at 0
                self.sems[key] = (ctx.Semaphore(0), ctx.Semaphore(1))
        # tree-collective signals: up[r] = subtree of r done, down[r] =
        # result published for r
        self.up = [ctx.Semaphore(0) for _ in range(self.n_ranks)]
        self.down = [ctx.Semaphore(0) for _ in range(self.n_ranks)]
        self.barrier = ctx.Barrier(self.n_ranks)
        # telemetry plane: one metric row + event ring per rank, allocated
        # in the transport's own pool so the forked ranks inherit the
        # mappings and the leak-proofing covers the plane too
        self.plane = None
        if telemetry:
            from ...obs.live.plane import TelemetryPlane

            slots = tuple(rank_slots) if rank_slots is not None else RANK_SLOTS
            self.plane = TelemetryPlane(
                {f"rank{r}": slots for r in range(self.n_ranks)},
                pool=self.pool,
            )
        self.spec = self.pool.export_spec()

    def close(self) -> None:
        if self.plane is not None:
            self.plane.close()
        self.pool.close()


class Communicator:
    """One rank's endpoint of the transport (constructed inside the rank).

    Provides ``halo_exchange`` (blocking), the two-phase
    ``exchange_begin``/``exchange_end`` pair, ``allreduce`` over ``sum`` /
    ``max`` / ``min`` with the ``flat`` or ``tree`` algorithm, and
    ``barrier``.  All blocking waits share one timeout so a dead sibling
    turns into a :class:`CommTimeout` instead of a hang.
    """

    def __init__(
        self,
        transport: ShmTransport,
        rank: int,
        algo: str = "flat",
        attach: bool = True,
    ) -> None:
        if algo not in ("flat", "tree"):
            raise ValueError(f"unknown allreduce algorithm {algo!r}")
        self.rank = int(rank)
        self.n_ranks = transport.n_ranks
        self.algo = algo
        self.timeout = transport.timeout
        self._t = transport
        dom = transport.decomp.domains[rank]
        self.send_lists = dom.send_lists
        self.recv_lists = dom.recv_lists
        self.recorder = SpanRecorder(rank)
        # re-attach the shared segments by OS name: the fork-inherited
        # mappings would work, but attaching exercises the path a spawned
        # (non-fork) child would need and keeps the rank's view independent
        # of the parent pool object's lifecycle
        if attach:
            self._pool = transport.pool.__class__.attach(transport.spec)
        else:
            self._pool = transport.pool
        self._red = self._pool.array("red")
        self._send_bufs = {
            dst: self._pool.array(f"hb.{rank}.{dst}")
            for dst in self.send_lists
        }
        self._recv_bufs = {
            src: self._pool.array(f"hb.{src}.{rank}")
            for src in self.recv_lists
        }
        # measured communication accounting
        self.n_exchanges = 0
        self.n_messages = 0
        self.n_allreduces = 0
        self.halo_seconds = 0.0
        self.allreduce_seconds = 0.0
        self.bytes_sent = 0
        # live telemetry: write through the fork-inherited plane arrays
        # (not the re-attached pool) so the single-producer row stays tied
        # to this rank regardless of the attach mode
        self.telem = None
        plane = getattr(transport, "plane", None)
        if plane is not None:
            self.telem = plane.writer(f"rank{self.rank}")
            self.telem.hello()

    # -- helpers -------------------------------------------------------
    @staticmethod
    def _widths(arrays: Sequence[np.ndarray]) -> list[int]:
        return [int(np.prod(a.shape[1:])) if a.ndim > 1 else 1 for a in arrays]

    def _acquire(self, sem, what: str) -> None:
        if self.telem is None:
            if not sem.acquire(timeout=self.timeout):
                raise CommTimeout(
                    f"rank {self.rank}: timed out after {self.timeout}s "
                    f"waiting for {what}"
                )
            return
        # slice the wait so the heartbeat keeps pulsing while blocked: the
        # health monitor then sees a live-but-spinning rank, not a corpse
        deadline = time.monotonic() + self.timeout
        while not sem.acquire(timeout=0.5):
            self.telem.heartbeat(STATE_SPIN)
            if time.monotonic() > deadline:
                raise CommTimeout(
                    f"rank {self.rank}: timed out after {self.timeout}s "
                    f"waiting for {what}"
                )
        self.telem.heartbeat(STATE_BUSY)

    # -- halo exchange -------------------------------------------------
    def exchange_begin(self, arrays: Sequence[np.ndarray]) -> tuple:
        """Pack owned values into every neighbor's mailbox and post them.

        Returns a token for :meth:`exchange_end`.  Between the two calls
        the caller is free to compute on data that does not depend on
        ghosts — that window is the pipelined overlap.
        """
        widths = self._widths(arrays)
        total = sum(widths)
        if total > self._t.halo_width:
            raise ValueError(
                f"payload of {total} doubles/vertex exceeds mailbox "
                f"width {self._t.halo_width}"
            )
        t0 = time.perf_counter()
        for dst in sorted(self.send_lists):
            send_idx = self.send_lists[dst]
            buf = self._send_bufs[dst]
            full, free = self._t.sems[(self.rank, dst)]
            self._acquire(free, f"mailbox to rank {dst} to drain")
            col = 0
            for a, w in zip(arrays, widths):
                buf[: send_idx.shape[0], col : col + w] = a[
                    send_idx
                ].reshape(send_idx.shape[0], w)
                col += w
            full.release()
            self.n_messages += 1
            self.bytes_sent += send_idx.shape[0] * total * 8
        return (t0, tuple(widths))

    def exchange_end(self, token: tuple, arrays: Sequence[np.ndarray]) -> None:
        """Wait for every neighbor's message and unpack into ghost slots."""
        t0, widths = token
        for src in sorted(self.recv_lists):
            slots = self.recv_lists[src]
            buf = self._recv_bufs[src]
            full, free = self._t.sems[(src, self.rank)]
            self._acquire(full, f"message from rank {src}")
            col = 0
            for a, w in zip(arrays, widths):
                a[slots] = buf[: slots.shape[0], col : col + w].reshape(
                    (slots.shape[0],) + a.shape[1:]
                )
                col += w
            free.release()
        t1 = time.perf_counter()
        self.n_exchanges += 1
        self.halo_seconds += t1 - t0
        self.recorder.add(
            "halo", t0, t1, messages=len(self.send_lists) + len(self.recv_lists)
        )
        if self.telem is not None:
            self.telem.add(exchanges=1.0, halo_seconds=t1 - t0)

    def halo_exchange(self, arrays: Sequence[np.ndarray]) -> None:
        """Blocking exchange: refresh ghost slots of every array in one
        message per neighbor (arrays are packed side by side)."""
        self.exchange_end(self.exchange_begin(arrays), arrays)

    # -- collectives ---------------------------------------------------
    def allreduce(self, values, op: str = "sum"):
        """Global reduction; every rank returns the identical result.

        ``values`` may be a scalar or a 1-d array no wider than the
        reduction scratch.  The result is deterministic: contributions
        combine in rank order (flat) or fixed tree order (tree), so
        repeated runs — and every rank within a run — see the same bits.
        """
        vals = np.atleast_1d(np.asarray(values, dtype=np.float64))
        k = vals.shape[0]
        if k > self._t.red_width:
            raise ValueError(
                f"reduction of width {k} exceeds scratch width "
                f"{self._t.red_width}"
            )
        if op not in ("sum", "max", "min"):
            raise ValueError(f"unknown reduction op {op!r}")
        t0 = time.perf_counter()
        if self.n_ranks == 1:
            out = vals.copy()
        elif self.algo == "flat":
            out = self._allreduce_flat(vals, k, op)
        else:
            out = self._allreduce_tree(vals, k, op)
        t1 = time.perf_counter()
        self.n_allreduces += 1
        self.allreduce_seconds += t1 - t0
        self.recorder.add("allreduce", t0, t1, width=k, op=op, algo=self.algo)
        if self.telem is not None:
            self.telem.add(allreduces=1.0, allreduce_seconds=t1 - t0)
        return float(out[0]) if np.ndim(values) == 0 else out

    def _allreduce_flat(self, vals, k, op):
        red = self._red
        red[self.rank, :k] = vals
        self.barrier()
        if op == "sum":
            # explicit rank-order accumulation (not np.sum's pairwise tree)
            # so the bits match across ranks by construction
            out = red[0, :k].copy()
            for r in range(1, self.n_ranks):
                out += red[r, :k]
        elif op == "max":
            out = red[: self.n_ranks, :k].max(axis=0)
        else:
            out = red[: self.n_ranks, :k].min(axis=0)
        # second barrier: nobody may overwrite a slot for the next
        # reduction while a slower rank is still reading this one
        self.barrier()
        return out

    def _allreduce_tree(self, vals, k, op):
        red, t = self._red, self._t
        r, n = self.rank, self.n_ranks
        kids = [c for c in (2 * r + 1, 2 * r + 2) if c < n]
        acc = vals.copy()
        for c in kids:  # fixed ascending order -> deterministic bits
            self._acquire(t.up[c], f"subtree of rank {c}")
            if op == "sum":
                acc += red[c, :k]
            elif op == "max":
                np.maximum(acc, red[c, :k], out=acc)
            else:
                np.minimum(acc, red[c, :k], out=acc)
        if r == 0:
            red[n, :k] = acc
            for c in kids:
                t.down[c].release()
        else:
            red[r, :k] = acc
            t.up[r].release()
            self._acquire(t.down[r], "broadcast from the root")
            for c in kids:
                t.down[c].release()
        return red[n, :k].copy()

    def barrier(self) -> None:
        """Synchronize all ranks (broken barrier -> CommTimeout)."""
        try:
            self._t.barrier.wait(timeout=self.timeout)
        except Exception as exc:
            raise CommTimeout(
                f"rank {self.rank}: barrier broken or timed out ({exc})"
            ) from exc

    # -- accounting ----------------------------------------------------
    def stats(self) -> dict[str, float]:
        """Measured communication totals for this rank."""
        return {
            "exchanges": float(self.n_exchanges),
            "messages": float(self.n_messages),
            "allreduces": float(self.n_allreduces),
            "halo_seconds": self.halo_seconds,
            "allreduce_seconds": self.allreduce_seconds,
            "bytes_sent": float(self.bytes_sent),
        }

    def close(self) -> None:
        if self._pool is not self._t.pool:
            self._pool.close()
