"""Interconnect cost model: Mellanox FDR fat tree (TACC Stampede).

The multi-node experiments ran on Stampede: dual-socket nodes on FDR
InfiniBand in a 2-level fat tree.  The model charges:

* point-to-point: ``latency(hops) + bytes / link_bw`` per message,
* allreduce: a recursive-doubling tree of ``log2(P)`` stages.  Each stage
  costs the hardware hop latency **plus an effective synchronization-noise
  term**: in production MPI runs the collective absorbs per-rank compute
  jitter and OS noise, which is why measured large-scale allreduce times are
  orders of magnitude above the wire latency.  This term is what makes the
  Krylov solver's global reductions the scaling wall (paper Fig. 10: >90%
  of communication at 256 nodes is MPI_Allreduce).

Constants are calibrated so the Mesh-D workload becomes ~70% communication
bound at 256 nodes, as measured in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["FatTreeNetwork", "STAMPEDE_FDR"]


@dataclass(frozen=True)
class FatTreeNetwork:
    """2-level fat-tree interconnect with per-message and collective costs."""

    name: str
    link_bw: float  # B/s per direction
    base_latency: float  # s, NIC-to-NIC same leaf
    hop_latency: float  # s, extra per switch level
    nodes_per_leaf: int
    #: effective per-stage allreduce cost: hardware latency plus absorbed
    #: compute jitter / OS noise (dominates at scale)
    allreduce_stage_cost: float

    def hops(self, node_a: int, node_b: int) -> int:
        """Switch hops between two nodes (same leaf: 1, cross-leaf: 3)."""
        if node_a == node_b:
            return 0
        return 1 if node_a // self.nodes_per_leaf == node_b // self.nodes_per_leaf else 3

    def ptp_time(self, nbytes: float, hops: int = 3) -> float:
        """One point-to-point message of ``nbytes`` over ``hops`` switches."""
        return self.base_latency + hops * self.hop_latency + nbytes / self.link_bw

    def allreduce_time(self, nbytes: float, n_ranks: int) -> float:
        """Recursive-doubling allreduce across ``n_ranks``."""
        if n_ranks <= 1:
            return 0.0
        stages = float(np.ceil(np.log2(n_ranks)))
        return stages * (self.allreduce_stage_cost + nbytes / self.link_bw)

    def neighbor_exchange_time(
        self, bytes_per_neighbor: np.ndarray, hops: int = 3
    ) -> float:
        """Halo exchange with each neighbor, messages pipelined pairwise.

        The sends overlap, so the cost is dominated by the per-message
        latencies plus the serialized bytes over one NIC.
        """
        if bytes_per_neighbor.size == 0:
            return 0.0
        lat = bytes_per_neighbor.shape[0] * (
            self.base_latency + hops * self.hop_latency
        )
        return lat + float(bytes_per_neighbor.sum()) / self.link_bw


#: Stampede's FDR InfiniBand fabric.  56 Gb/s FDR nets ~6 GB/s effective;
#: MPI small-message latency ~1.1 us + ~0.4 us per switch stage.  The
#: 120 us allreduce stage cost is the calibrated effective value (wire
#: latency + absorbed jitter) that reproduces the paper's 70% communication
#: fraction for Mesh-D on 256 nodes (16 ranks/node => 4096 ranks, 12
#: stages => ~1.5 ms per allreduce).
STAMPEDE_FDR = FatTreeNetwork(
    name="Stampede FDR fat-tree",
    link_bw=6.0e9,
    base_latency=1.1e-6,
    hop_latency=0.4e-6,
    nodes_per_leaf=20,
    allreduce_stage_cost=120e-6,
)
