"""Domain decomposition with ghost vertices and verified halo exchange.

The distributed solver assigns each vertex to one rank; each rank stores its
owned vertices plus one layer of *ghost* copies of off-rank neighbors.  The
edge-based kernels then run on purely local arrays, and a VecScatter-style
halo exchange refreshes the ghosts — "local communication to complete the
edges cut by the domain decomposition" (paper Section III.A).

Because the whole simulation lives in one address space, the exchange could
be faked; instead :class:`DomainDecomposition` genuinely packs per-rank send
buffers from owner data and unpacks into each rank's ghost slots, and the
tests verify the result against direct global indexing.  The structure also
yields the communication *counts* (neighbors, bytes) the network model
charges for.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..obs.metrics import get_metrics

__all__ = ["LocalDomain", "DomainDecomposition"]


@dataclass
class LocalDomain:
    """One rank's view of the mesh."""

    rank: int
    owned: np.ndarray  # global ids of owned vertices
    ghosts: np.ndarray  # global ids of ghost vertices (ascending rank order)
    local_of_global: dict[int, int] = field(repr=False, default_factory=dict)
    #: per-neighbor (rank, local indices to send, local ghost slots to recv)
    send_lists: dict[int, np.ndarray] = field(default_factory=dict)
    recv_lists: dict[int, np.ndarray] = field(default_factory=dict)
    #: edges with both endpoints local (owned+ghost), in local indices
    local_edges: np.ndarray | None = None
    #: global edge ids of ``local_edges`` rows (same order/orientation), so
    #: rank runtimes can gather per-edge metrics (normals, midpoints) without
    #: re-deriving them from coordinates
    edge_ids: np.ndarray | None = None

    @property
    def n_owned(self) -> int:
        return self.owned.shape[0]

    @property
    def n_local(self) -> int:
        return self.owned.shape[0] + self.ghosts.shape[0]

    def neighbor_ranks(self) -> list[int]:
        return sorted(self.send_lists)

    def send_bytes(self, nvars: int = 4) -> np.ndarray:
        """Bytes sent to each neighbor in one exchange."""
        return np.array(
            [self.send_lists[r].shape[0] * nvars * 8.0 for r in self.neighbor_ranks()]
        )


class DomainDecomposition:
    """Build per-rank local domains from a vertex partition.

    Edges incident to a rank's owned vertices are assigned to that rank
    (owner-computes with replicated cut edges, matching the shared-memory
    replication strategy one level up the hierarchy).
    """

    def __init__(self, edges: np.ndarray, labels: np.ndarray) -> None:
        self.edges = np.asarray(edges)
        self.labels = np.asarray(labels)
        self.n_ranks = int(labels.max()) + 1 if labels.size else 1
        self.domains: list[LocalDomain] = []
        self._build()

    def _build(self) -> None:
        nv = self.labels.shape[0]
        e0, e1 = self.edges[:, 0], self.edges[:, 1]
        l0, l1 = self.labels[e0], self.labels[e1]
        for r in range(self.n_ranks):
            owned = np.where(self.labels == r)[0]
            # edges this rank processes: any endpoint owned
            sel = (l0 == r) | (l1 == r)
            re0, re1 = e0[sel], e1[sel]
            # ghost vertices: off-rank endpoints of those edges
            other = np.concatenate([re0[l0[sel] != r], re1[l1[sel] != r]])
            ghosts = np.unique(other)
            local_ids = np.concatenate([owned, ghosts])
            lookup = {int(g): i for i, g in enumerate(local_ids)}
            dom = LocalDomain(
                rank=r, owned=owned, ghosts=ghosts, local_of_global=lookup
            )
            remap = np.vectorize(lookup.__getitem__, otypes=[np.int64])
            if re0.size:
                dom.local_edges = np.stack([remap(re0), remap(re1)], axis=1)
            else:
                dom.local_edges = np.zeros((0, 2), dtype=np.int64)
            dom.edge_ids = np.where(sel)[0]
            # recv lists grouped by owner rank
            if ghosts.size:
                owners = self.labels[ghosts]
                for nb in np.unique(owners):
                    sel_nb = owners == nb
                    dom.recv_lists[int(nb)] = (
                        owned.shape[0] + np.where(sel_nb)[0]
                    )
            self.domains.append(dom)
        # send lists mirror the neighbors' recv lists
        for dom in self.domains:
            for nb, slots in dom.recv_lists.items():
                ghost_globals = (
                    np.concatenate([dom.owned, dom.ghosts])[slots]
                )
                nb_dom = self.domains[nb]
                send_local = np.array(
                    [nb_dom.local_of_global[int(g)] for g in ghost_globals],
                    dtype=np.int64,
                )
                nb_dom.send_lists[dom.rank] = send_local
        # replicated cut edges: each cut edge is processed by both endpoint
        # ranks (the paper's owner-computes replication overhead)
        n_global = max(int(self.edges.shape[0]), 1)
        n_local = sum(int(d.local_edges.shape[0]) for d in self.domains)
        met = get_metrics()
        met.gauge("halo.redundant_edge_fraction").set(
            (n_local - self.edges.shape[0]) / n_global
        )
        met.gauge("halo.n_ranks").set(self.n_ranks)

    # ------------------------------------------------------------------
    def scatter(self, global_field: np.ndarray) -> list[np.ndarray]:
        """Distribute a global per-vertex array into per-rank local arrays
        (owned values filled, ghosts zeroed)."""
        out = []
        for dom in self.domains:
            shape = (dom.n_local,) + global_field.shape[1:]
            local = np.zeros(shape, dtype=global_field.dtype)
            local[: dom.n_owned] = global_field[dom.owned]
            out.append(local)
        return out

    def halo_exchange(self, locals_: list[np.ndarray]) -> None:
        """Refresh every rank's ghost entries by packing/unpacking buffers.

        This is the real VecScatter dance: each rank packs its owned values
        destined for each neighbor; buffers are 'transmitted' and unpacked
        into the neighbor's ghost slots.
        """
        buffers: dict[tuple[int, int], np.ndarray] = {}
        nbytes = 0
        for dom in self.domains:
            for nb, send_idx in dom.send_lists.items():
                buf = locals_[dom.rank][send_idx].copy()
                buffers[(dom.rank, nb)] = buf
                nbytes += buf.nbytes
        for dom in self.domains:
            for nb, slots in dom.recv_lists.items():
                locals_[dom.rank][slots] = buffers[(nb, dom.rank)]
        met = get_metrics()
        met.counter("halo.exchanges").inc()
        met.counter("halo.messages").inc(len(buffers))
        met.counter("halo.bytes").inc(nbytes)

    def gather(self, locals_: list[np.ndarray], nv: int) -> np.ndarray:
        """Assemble owned values back into a global array."""
        shape = (nv,) + locals_[0].shape[1:]
        out = np.zeros(shape, dtype=locals_[0].dtype)
        for dom in self.domains:
            out[dom.owned] = locals_[dom.rank][: dom.n_owned]
        return out

    # ------------------------------------------------------------------
    def comm_stats(self, nvars: int = 4) -> dict[str, float]:
        """Aggregate exchange statistics for the network cost model."""
        nbrs = [len(d.send_lists) for d in self.domains]
        byts = [float(d.send_bytes(nvars).sum()) for d in self.domains]
        return {
            "max_neighbors": float(max(nbrs) if nbrs else 0),
            "avg_neighbors": float(np.mean(nbrs) if nbrs else 0),
            "max_send_bytes": float(max(byts) if byts else 0),
            "total_send_bytes": float(sum(byts)),
        }
