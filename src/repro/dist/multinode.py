"""Multi-node execution model: strong scaling of the NKS solver.

Combines three ingredients into the paper's Figures 9-11:

* per-rank **compute** from the shared-memory cost models (`repro.smp`),
  with per-rank problem sizes derived from the partition's surface-to-volume
  law (fitted to real partitions of the actual mesh),
* **point-to-point** halo exchanges per residual evaluation / matvec, priced
  by the fat-tree model from real ghost-layer byte counts,
* **global collectives** (VecMDot/VecNorm allreduces) per Krylov iteration —
  the term that ends strong scaling,

plus the convergence side: the number of Krylov iterations grows with the
subdomain count because block-ILU Schwarz weakens as coupling is cut (the
paper reports ~30% more iterations at 256 nodes MPI-only).  The growth
exponent is validated against real reduced-scale ASM solves in the tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..obs.metrics import get_metrics
from ..obs.span import Span, synthetic_span
from ..smp.cost import (
    EdgeLoopOptions,
    TriSolveOptions,
    edge_loop_time,
    flux_kernel_work,
    grad_kernel_work,
    ilu_time,
    jacobian_kernel_work,
    trsv_time,
    vector_op_time,
)
from ..smp.machine import STAMPEDE_E5_2680, MachineModel
from .network import STAMPEDE_FDR, FatTreeNetwork

__all__ = ["WorkloadSpec", "NodeConfig", "MultiNodeModel", "MESH_C_PAPER", "MESH_D_PAPER"]


@dataclass(frozen=True)
class WorkloadSpec:
    """Problem size + single-domain solver statistics of a workload.

    Paper-scale specs let the model reason about the original meshes even
    though the numerics run on the laptop-scale analogues.
    """

    name: str
    n_vertices: int
    n_edges: int
    time_steps: int
    linear_iterations: int  # with a single subdomain

    @property
    def nnzb(self) -> int:
        return 2 * self.n_edges + self.n_vertices


#: Table I rows (the 1999 study's two largest ONERA M6 meshes).
MESH_C_PAPER = WorkloadSpec("Mesh-C", 357_900, 2_400_000, 13, 383)
MESH_D_PAPER = WorkloadSpec("Mesh-D", 2_761_774, 18_945_809, 29, 1709)


@dataclass
class NodeConfig:
    """How each node runs: rank/thread split and optimization level."""

    machine: MachineModel = STAMPEDE_E5_2680
    sockets_per_node: int = 2
    ranks_per_node: int = 16
    threads_per_rank: int = 1
    optimized: bool = False  # cache + SIMD optimizations
    threaded_kernels: bool = False  # hybrid: FUN3D kernels OpenMP-threaded
    vec_primitives_threaded: bool = False  # PETSc natives are NOT threaded
    #: efficiency of OpenMP-threaded kernels vs ideal (NUMA placement,
    #: fork/join overhead, first-touch effects across a socket)
    thread_efficiency: float = 0.93
    #: pipelined GMRES [Ghysels et al. 2013] — the paper's future-work
    #: direction for the allreduce wall: reductions overlap the matvec and
    #: preconditioner work of the same iteration
    pipelined_gmres: bool = False

    def label(self) -> str:
        if self.threaded_kernels:
            return "Hybrid"
        return "Optimized" if self.optimized else "Baseline"


@dataclass
class MultiNodeModel:
    """Strong-scaling time model for one workload on one cluster."""

    workload: WorkloadSpec
    network: FatTreeNetwork = STAMPEDE_FDR
    config: NodeConfig = field(default_factory=NodeConfig)
    #: fraction of edges cut at P parts: cut_coeff * P^(1/3); the default
    #: coefficient is fitted from multilevel partitions of Mesh-D' (tests
    #: re-fit and compare)
    cut_coeff: float = 0.028
    #: average neighbor ranks per rank for compact 3D partitions
    neighbors_per_rank: float = 10.0
    #: Krylov iteration growth: +30% at 4096 subdomains (paper Sec. VI.B.3)
    iter_growth_at_ref: float = 0.30
    iter_growth_ref: float = 4096.0
    #: per-iteration vector-primitive traffic: GMRES touches ~12 vectors
    vec_vectors_per_iter: float = 12.0

    # ------------------------------------------------------------------
    def n_ranks(self, n_nodes: int) -> int:
        return n_nodes * self.config.ranks_per_node

    def rank_machine(self) -> MachineModel:
        """Per-rank view of the socket: ranks co-located on a socket split
        its DRAM bandwidth evenly (the dominant multi-rank interaction —
        with 8 single-thread ranks per socket each sees ~1/8 of STREAM,
        which is why the bandwidth-bound kernels gain nothing from more
        ranks per node and why hybrid's threaded TRSV matches MPI-only's)."""
        from dataclasses import replace

        cfg = self.config
        ranks_per_socket = max(1, cfg.ranks_per_node // cfg.sockets_per_node)
        if ranks_per_socket <= 1:
            return cfg.machine
        share = cfg.machine.stream_bw / ranks_per_socket
        return replace(
            cfg.machine,
            core_bw=min(cfg.machine.core_bw, share),
            stream_bw=share,
        )

    def cut_fraction(self, n_parts: int) -> float:
        if n_parts <= 1:
            return 0.0
        return min(0.9, self.cut_coeff * n_parts ** (1.0 / 3.0))

    def iterations(self, n_parts: int) -> float:
        """Total Krylov iterations at ``n_parts`` subdomains."""
        if n_parts <= 1:
            return float(self.workload.linear_iterations)
        growth = self.iter_growth_at_ref * (
            np.log(n_parts) / np.log(self.iter_growth_ref)
        )
        return self.workload.linear_iterations * (1.0 + growth)

    # ------------------------------------------------------------------
    def _rank_sizes(self, n_nodes: int) -> tuple[float, float, float]:
        """(vertices, edges, nnzb) per rank including halo replication and
        a mild imbalance factor."""
        P = self.n_ranks(n_nodes)
        imb = 1.08  # partitioner edge imbalance (measured on our meshes)
        cut = self.cut_fraction(P)
        nv_r = self.workload.n_vertices / P * imb
        ne_r = self.workload.n_edges * (1.0 + cut) / P * imb
        nnzb_r = self.workload.nnzb / P * imb
        return nv_r, ne_r, nnzb_r

    def _edge_opts(self) -> dict:
        cfg = self.config
        if cfg.threaded_kernels:
            t = cfg.threads_per_rank
            strategy = "replicate"
        else:
            t, strategy = 1, "sequential"
        return dict(
            n_threads=t,
            strategy=strategy,
            layout="aos" if cfg.optimized else "soa",
            simd=cfg.optimized,
            prefetch=cfg.optimized,
            rcm=True,
        )

    def _edge_time(self, work) -> float:
        opts = EdgeLoopOptions(**self._edge_opts())
        if opts.strategy == "replicate":
            # thread-level replication within the rank (METIS-quality)
            per = np.full(
                opts.n_threads,
                np.ceil(work.n_edges * 1.06 / opts.n_threads),
            )
            opts.edges_per_thread = per
        t = edge_loop_time(self.rank_machine(), work, opts)
        if self.config.threaded_kernels:
            t /= self.config.thread_efficiency
        return t

    def _tri_opts(self, nv_r: float) -> TriSolveOptions:
        cfg = self.config
        if cfg.threaded_kernels and cfg.threads_per_rank > 1:
            return TriSolveOptions(
                n_threads=cfg.threads_per_rank,
                strategy="p2p",
                simd=cfg.optimized,
                cross_deps=int(1.5 * nv_r),
            )
        return TriSolveOptions(n_threads=1, strategy="sequential", simd=cfg.optimized)

    # ------------------------------------------------------------------
    def step_breakdown(self, n_nodes: int) -> dict[str, float]:
        """Seconds per component for the whole solve at ``n_nodes`` nodes."""
        cfg = self.config
        mach = self.rank_machine()
        P = self.n_ranks(n_nodes)
        nv_r, ne_r, nnzb_r = self._rank_sizes(n_nodes)
        iters = self.iterations(P)
        steps = self.workload.time_steps

        flux = self._edge_time(flux_kernel_work(int(ne_r)))
        grad = self._edge_time(grad_kernel_work(int(ne_r)))
        jac = self._edge_time(jacobian_kernel_work(int(ne_r)))
        topts = self._tri_opts(nv_r)
        trsv = trsv_time(mach, int(nnzb_r), int(nv_r), 4, topts)
        block_ops = 2.2 * nnzb_r
        ilu = ilu_time(mach, int(block_ops), int(nnzb_r), int(nv_r), 4, topts)
        if cfg.threaded_kernels:
            trsv /= cfg.thread_efficiency
            ilu /= cfg.thread_efficiency

        vec_threads = (
            cfg.threads_per_rank if cfg.vec_primitives_threaded else 1
        )
        vec_bytes = nv_r * 4 * 8.0 * self.vec_vectors_per_iter
        vec = vector_op_time(mach, vec_bytes, vec_bytes / 8.0, vec_threads)

        # per linear iteration: matvec (flux+grad residual), TRSV, vec ops
        per_iter = flux + grad + trsv + vec
        # per pseudo-time step: residual + Jacobian + ILU
        per_step = flux + grad + jac + ilu
        compute = iters * per_iter + steps * per_step

        # point-to-point: one halo refresh per residual evaluation
        ghost_per_rank = (
            self.workload.n_edges * self.cut_fraction(P) / max(P, 1)
        )
        bytes_per_nb = np.full(
            int(min(self.neighbors_per_rank, max(P - 1, 1))),
            ghost_per_rank * 4 * 8.0 / max(self.neighbors_per_rank, 1.0),
        )
        halo_once = self.network.neighbor_exchange_time(bytes_per_nb)
        halo = (iters + 2 * steps) * halo_once if P > 1 else 0.0

        # collectives: 2 allreduces (VecMDot + VecNorm) per Krylov iteration
        # plus a few per step (residual norms, timestep reductions)
        ar_once = self.network.allreduce_time(8.0 * 16, P)
        n_allreduce = (2.0 * iters + 4.0 * steps) if P > 1 else 0.0
        if cfg.pipelined_gmres and P > 1:
            # reductions overlap the iteration's matvec + preconditioner
            # work; only the un-hidden remainder is exposed
            exposed = max(0.0, 2.0 * ar_once - per_iter)
            allreduce = iters * exposed + 4.0 * steps * ar_once
        else:
            allreduce = n_allreduce * ar_once

        total = compute + halo + allreduce
        met = get_metrics()
        met.counter("model.allreduce_count").inc(n_allreduce)
        met.gauge("model.comm_fraction").set((halo + allreduce) / total)
        return {
            "nodes": float(n_nodes),
            "ranks": float(P),
            "iterations": iters,
            "allreduce_count": n_allreduce,
            "compute": compute,
            "halo": halo,
            "allreduce": allreduce,
            "comm": halo + allreduce,
            "total": total,
            "comm_fraction": (halo + allreduce) / total,
        }

    def trace_breakdown(self, n_nodes: int) -> Span:
        """The Fig. 10 breakdown as a synthetic span tree.

        Children ``compute``/``halo``/``allreduce`` carry the modeled
        seconds of :meth:`step_breakdown`, laid out back-to-back, so the
        strong-scaling model exports through the same span machinery (and
        Chrome-trace/JSONL writers) as the measured solves.
        """
        bd = self.step_breakdown(n_nodes)
        children = [
            synthetic_span("compute", bd["compute"]),
            synthetic_span("halo", bd["halo"]),
            synthetic_span(
                "allreduce", bd["allreduce"], count=bd["allreduce_count"]
            ),
        ]
        return synthetic_span(
            f"scaling/{self.workload.name}/{n_nodes}-nodes",
            bd["total"],
            children=children,
            nodes=n_nodes,
            ranks=bd["ranks"],
            iterations=bd["iterations"],
            comm_fraction=bd["comm_fraction"],
            config=self.config.label(),
        )

    def total_time(self, n_nodes: int) -> float:
        return self.step_breakdown(n_nodes)["total"]
