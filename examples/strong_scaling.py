#!/usr/bin/env python3
"""Strong-scaling study: Mesh-D on 1-256 Stampede nodes (model + real ASM).

Regenerates the paper's multi-node story: baseline vs cache/SIMD-optimized
vs hybrid execution of the Mesh-D workload, the communication breakdown
that ends scaling (Krylov allreduces), and — with real reduced-scale
additive-Schwarz solves — the convergence degradation that punishes
MPI-only rank counts.

Run:  python examples/strong_scaling.py
"""

from repro.cfd import FlowConfig, FlowField
from repro.dist import MESH_D_PAPER, MultiNodeModel, NodeConfig
from repro.mesh import mesh_c_prime
from repro.perf import format_series
from repro.solver import SolverOptions, solve_steady


def main() -> None:
    nodes = [1, 2, 4, 8, 16, 32, 64, 128, 256]

    configs = {
        "Baseline": NodeConfig(optimized=False),
        "Optimized": NodeConfig(optimized=True),
        "Hybrid": NodeConfig(
            optimized=True, ranks_per_node=2, threads_per_rank=8,
            threaded_kernels=True),
    }
    models = {k: MultiNodeModel(MESH_D_PAPER, config=c) for k, c in configs.items()}

    series = {
        k: [f"{m.total_time(n):.1f}" for n in nodes] for k, m in models.items()
    }
    print(format_series("nodes", nodes, series,
                        title=f"{MESH_D_PAPER.name} execution time (s), modeled"))
    print()

    base = models["Baseline"]
    series2 = {
        "comm %": [f"{100 * base.step_breakdown(n)['comm_fraction']:.0f}%"
                   for n in nodes],
        "allreduce % of comm": [
            (lambda b: f"{100 * b['allreduce'] / b['comm']:.0f}%"
             if b["comm"] else "-")(base.step_breakdown(n))
            for n in nodes
        ],
        "Krylov iterations": [f"{base.iterations(base.n_ranks(n)):.0f}"
                              for n in nodes],
    }
    print(format_series("nodes", nodes, series2,
                        title="communication breakdown (baseline MPI-only)"))
    print()

    # real convergence degradation: additive Schwarz with more subdomains
    print("real reduced-scale ASM solves (Mesh-C' analogue):")
    mesh = mesh_c_prime(scale=0.12)
    fld = FlowField(mesh)
    cfg = FlowConfig()
    for k in (1, 4, 16, 64):
        res = solve_steady(
            fld, cfg, SolverOptions(max_steps=80, n_subdomains=k))
        print(f"  {k:3d} subdomains: {res.linear_iterations:4d} Krylov "
              f"iterations (converged={res.converged})")


if __name__ == "__main__":
    main()
