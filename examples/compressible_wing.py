#!/usr/bin/env python3
"""Compressible Euler solve over the wing (the 5x5-block path).

FUN3D solves both regimes; the paper works in the incompressible one
because it "poses the greatest challenge for high performance" and notes
that compressibility adds flops without changing the algorithm.  This
example runs the compressible path (conservative variables, ideal gas) at
several Mach numbers and shows that the same block solver stack — BCSR,
ILU, level-scheduled TRSV, additive Schwarz, JFNK GMRES — runs unchanged
at block size 5.

Run:  python examples/compressible_wing.py
"""

import numpy as np

from repro.cfd import FlowField
from repro.cfd.compressible import (
    GAMMA,
    CompressibleConfig,
    solve_compressible_steady,
)
from repro.mesh import wing_mesh
from repro.perf import format_table


def main() -> None:
    mesh = wing_mesh(n_around=20, n_radial=6, n_span=5)
    fld = FlowField(mesh)
    print(f"{mesh.name}: {mesh.n_vertices} vertices, {mesh.n_edges} edges, "
          f"5 unknowns/vertex\n")

    rows = []
    for mach in (0.3, 0.5, 0.7):
        cfg = CompressibleConfig(mach=mach, aoa_deg=3.0)
        res = solve_compressible_steady(fld, cfg, max_steps=80)
        q = res.q
        p = (GAMMA - 1) * (
            q[:, 4] - 0.5 * np.einsum("ni,ni->n", q[:, 1:4], q[:, 1:4]) / q[:, 0]
        )
        rows.append([
            f"{mach:.1f}",
            "yes" if res.converged else "no",
            res.steps,
            res.linear_iterations,
            f"{q[:, 0].max():.4f}",
            f"{p.max() * GAMMA:.4f}",  # normalized by freestream p
        ])
    print(format_table(
        ["Mach", "converged", "steps", "Krylov iters",
         "max density", "max p/p_inf"],
        rows,
        title="compressible steady solves (ideal gas, AoA 3 deg)",
    ))
    print("\ncompression at the leading edge grows with Mach number, as it"
          "\nshould; the solver stack is identical to the incompressible"
          "\npath, just on 5x5 blocks.")


if __name__ == "__main__":
    main()
