#!/usr/bin/env python3
"""Kernel tuning study: edge-loop threading strategies and data layouts.

Reproduces the paper's Section V.A exploration interactively: compares the
three threading strategies (atomics / natural replication / METIS) and the
layout/SIMD/prefetch space for the flux kernel on a Mesh-C'-like wing, and
verifies that every strategy produces numerics identical to the sequential
kernel.

Run:  python examples/kernel_tuning.py
"""

import numpy as np

from repro.cfd import FlowConfig, FlowField, rusanov_edge_flux, scatter_edge_flux
from repro.mesh import mesh_c_prime
from repro.perf import format_series, format_table
from repro.smp import (
    XEON_E5_2690_V2,
    EdgeLoopExecutor,
    EdgeLoopOptions,
    edge_loop_time,
    flux_kernel_work,
    make_edge_loop_options,
    metis_thread_labels,
    natural_thread_labels,
)


def main() -> None:
    mesh = mesh_c_prime(scale=0.12)
    field = FlowField(mesh)
    mach = XEON_E5_2690_V2
    work = flux_kernel_work(mesh.n_edges)
    print(f"{mesh.name}: {mesh.n_edges} edges\n")

    # --- 1. numerics equivalence across strategies ----------------------
    rng = np.random.default_rng(0)
    q = field.initial_state(FlowConfig()) + 0.05 * rng.normal(
        size=(field.n_vertices, 4)
    )

    def compute(eidx):
        return rusanov_edge_flux(
            q[field.e0[eidx]], q[field.e1[eidx]], field.enormals[eidx], 4.0
        )

    flux = rusanov_edge_flux(q[field.e0], q[field.e1], field.enormals, 4.0)
    ref = scatter_edge_flux(flux, field.e0, field.e1, field.n_vertices)
    t = 8
    for name, strategy, labels in (
        ("atomics", "atomic", None),
        ("replication/natural", "replicate",
         natural_thread_labels(mesh.n_vertices, t)),
        ("replication/METIS", "replicate",
         metis_thread_labels(mesh.edges, mesh.n_vertices, t, seed=1)),
    ):
        ex = EdgeLoopExecutor(mesh.edges, mesh.n_vertices, t, strategy, labels)
        res = ex.execute(compute)
        err = np.abs(res - ref).max()
        repl = ex.replication()
        print(f"  {name:<22} max |diff| vs sequential = {err:.2e}  "
              f"redundant compute +{100 * repl:.1f}%")
    print()

    # --- 2. strategy scaling (Fig 6b style) -----------------------------
    cores = [1, 2, 4, 8, 10]
    seq = EdgeLoopExecutor(mesh.edges, mesh.n_vertices, 1, "sequential")
    base = edge_loop_time(mach, work, make_edge_loop_options(
        seq, layout="soa", simd=False, prefetch=False, rcm=False))
    series = {"atomics": [], "natural": [], "METIS": []}
    for c in cores:
        if c == 1:
            for k in series:
                series[k].append(1.0)
            continue
        for k, strat, lab in (
            ("atomics", "atomic", None),
            ("natural", "replicate", natural_thread_labels(mesh.n_vertices, c)),
            ("METIS", "replicate",
             metis_thread_labels(mesh.edges, mesh.n_vertices, c, seed=1)),
        ):
            ex = EdgeLoopExecutor(mesh.edges, mesh.n_vertices, c, strat, lab)
            series[k].append(
                base / edge_loop_time(mach, work, make_edge_loop_options(ex))
            )
    fmt = {k: [f"{v:.1f}x" for v in vals] for k, vals in series.items()}
    print(format_series("cores", cores, fmt,
                        title="flux kernel speedup by strategy (modeled)"))
    print()

    # --- 3. layout / SIMD / prefetch (Fig 6a style) ----------------------
    labels = metis_thread_labels(mesh.edges, mesh.n_vertices, 20, seed=1)
    ex = EdgeLoopExecutor(mesh.edges, mesh.n_vertices, 20, "replicate", labels)
    rows = []
    for layout in ("soa", "aos"):
        for simd in (False, True):
            for pf in (False, True):
                tt = edge_loop_time(mach, work, EdgeLoopOptions(
                    n_threads=20, strategy="replicate", layout=layout,
                    simd=simd, prefetch=pf, rcm=True,
                    edges_per_thread=ex.edges_per_thread()))
                rows.append([layout, simd, pf, f"{base / tt:.1f}x"])
    print(format_table(["layout", "simd", "prefetch", "speedup vs seq base"],
                       rows, title="layout/SIMD/prefetch grid at 20 threads"))


if __name__ == "__main__":
    main()
