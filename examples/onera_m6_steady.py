#!/usr/bin/env python3
"""ONERA M6 analogue: steady solve on Mesh-C' with convergence history.

The closest thing in this repository to the paper's headline workload: the
Mesh-C analogue (swept, tapered wing; see DESIGN.md for the substitution),
solved with second-order fluxes, SER pseudo-transient continuation and an
ILU(1)-preconditioned Newton-Krylov-Schwarz method — the original
PETSc-FUN3D configuration.

Run:  python examples/onera_m6_steady.py [scale]

``scale`` (default 0.12) sizes the mesh; 1.0 reproduces the full Mesh-C'
(24.5k vertices) and takes several minutes of NumPy time.
"""

import sys
import time

from repro import Fun3dApp, OptimizationConfig, mesh_c_prime
from repro.cfd import integrate_forces
from repro.solver import SolverOptions


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.12
    mesh = mesh_c_prime(scale=scale)
    print(f"{mesh.name}: {mesh.n_vertices} vertices, {mesh.n_edges} edges, "
          f"{mesh.n_bfaces} boundary faces")

    app = Fun3dApp(mesh, solver=SolverOptions(max_steps=100))

    t0 = time.perf_counter()
    result = app.run(OptimizationConfig.baseline(ilu_fill=1))
    wall = time.perf_counter() - t0

    s = result.solve
    print(f"\nconverged={s.converged} in {s.steps} steps / "
          f"{s.linear_iterations} Krylov iterations ({wall:.1f}s wall)")
    print("residual history:")
    for i, r in enumerate(s.residual_history):
        cfl = s.cfl_history[i - 1] if 0 < i <= len(s.cfl_history) else float("nan")
        print(f"  step {i + 1:3d}  res {r:.3e}  cfl {cfl:9.1f}")

    forces = integrate_forces(app.field, s.q, app.flow)
    print(f"\nCL = {forces.cl:.4f}  CD = {forces.cd:.4f}  "
          f"(AoA {app.flow.aoa_deg} deg)")

    print("\nmodeled baseline profile (cf. paper Fig 5: "
          "flux 42 / trsv 17 / ilu 16 / grad 13 / jac 7 %):")
    for name, frac in sorted(result.fractions().items(), key=lambda kv: -kv[1]):
        print(f"  {name:<9} {100 * frac:5.1f}%")


if __name__ == "__main__":
    main()
