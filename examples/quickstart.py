#!/usr/bin/env python3
"""Quickstart: solve incompressible flow over a wing and profile the run.

Builds a small ONERA-M6-like wing mesh, runs the pseudo-transient
Newton-Krylov-Schwarz solver to steady state, and prints convergence,
aerodynamic coefficients, and the modeled baseline-vs-optimized kernel
profile for the paper's Xeon E5-2690v2.

Run:  python examples/quickstart.py
"""

from repro import Fun3dApp, OptimizationConfig, wing_mesh
from repro.cfd import integrate_forces
from repro.solver import SolverOptions


def main() -> None:
    mesh = wing_mesh(n_around=24, n_radial=8, n_span=6)
    print(f"mesh: {mesh.n_vertices} vertices, {mesh.n_edges} edges")

    app = Fun3dApp(mesh, solver=SolverOptions(max_steps=60))
    result = app.run(OptimizationConfig.baseline())

    s = result.solve
    print(
        f"converged={s.converged} in {s.steps} pseudo-time steps, "
        f"{s.linear_iterations} Krylov iterations"
    )
    print(
        f"residual: {s.initial_residual:.3e} -> {s.final_residual:.3e}"
    )

    forces = integrate_forces(app.field, s.q, app.flow)
    print(f"CL = {forces.cl:.4f}, CD = {forces.cd:.4f}")

    print("\nbaseline kernel profile (modeled, Xeon E5-2690v2):")
    for name, frac in sorted(result.fractions().items(), key=lambda kv: -kv[1]):
        print(f"  {name:<9} {100 * frac:5.1f}%")

    speedup = app.speedup_paper_scale(
        result.counts, OptimizationConfig.optimized()
    )
    print(f"\nmodeled full-app speedup with all optimizations "
          f"(20 threads): {speedup:.1f}x  (paper: 6.9x)")


if __name__ == "__main__":
    main()
