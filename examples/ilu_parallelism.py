#!/usr/bin/env python3
"""ILU fill-level study: convergence vs parallelism (Table II).

Sweeps the ILU fill level on a wing mesh and reports, for each level: the
factor pattern size, the dependency-graph level structure, the available
parallelism (the paper's Table II metric), the measured Krylov iterations
of the actual steady solve, and the modeled 1-core vs 10-core times —
exhibiting the crossover where ILU-0 overtakes ILU-1 under threading.

Run:  python examples/ilu_parallelism.py
"""

from repro.apps import Fun3dApp, OptimizationConfig
from repro.mesh import mesh_c_prime
from repro.perf import format_table
from repro.solver import SolverOptions
from repro.sparse import available_parallelism, build_levels


def main() -> None:
    mesh = mesh_c_prime(scale=0.12)
    print(f"{mesh.name}: {mesh.n_vertices} vertices, {mesh.n_edges} edges\n")
    app = Fun3dApp(mesh, solver=SolverOptions(max_steps=80))

    rows = []
    for fill in (0, 1, 2):
        plan = app.ilu_plan(fill)
        sched = build_levels(plan.rowptr, plan.cols)
        par = available_parallelism(plan.rowptr, plan.cols)
        res = app.run(OptimizationConfig.baseline(ilu_fill=fill))
        t1 = sum(app.modeled_profile(
            res.counts, OptimizationConfig.baseline(ilu_fill=fill)).values())
        t10 = sum(app.modeled_profile(
            res.counts, OptimizationConfig.optimized(ilu_fill=fill)).values())
        rows.append([
            f"ILU-{fill}",
            plan.factor_nnzb,
            sched.n_levels,
            f"{par:.0f}x",
            res.solve.linear_iterations,
            f"{t1:.2f}",
            f"{t10:.3f}",
            f"{t1 / t10:.1f}x",
        ])

    print(format_table(
        ["precond", "factor nnz (blocks)", "levels", "parallelism",
         "Krylov iters", "1-core (s)", "10-core (s)", "speedup"],
        rows,
        title="ILU fill-level study (cf. paper Table II: ILU-0 248x/777 its, "
        "ILU-1 60x/383 its; ILU-0 wins 1.3x at 10 cores)",
    ))
    print("\nfill-in buys convergence but destroys dependency parallelism;"
          "\nunder threading the cheaper-but-weaker ILU-0 wins.")


if __name__ == "__main__":
    main()
